//! Scalar functions and aggregates.
//!
//! EXCESS supports "user-defined functions (written both in E and in
//! EXCESS) and aggregate functions (written in E) … in a clean and
//! consistent way" (Section 2.2).  The E-language ADT functions are
//! proprietary to EXODUS; per the DESIGN.md substitution table we provide
//! the concrete functions the paper's examples use (arithmetic, `min`,
//! `age`) plus the obvious companions (`max`, `count`, `sum`, `avg`).
//!
//! Null propagation: arithmetic with a `dne` operand is `dne`; with `unk`,
//! `unk` (dne dominates).  Aggregates over an empty multiset: `min`/`max`/
//! `avg` return `dne` ("there is no such element"); `count` and `sum`
//! return 0.

use crate::error::{EvalError, EvalResult};
use excess_types::{Scalar, Value};

/// Binary numeric operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

fn null_out(a: &Value, b: &Value) -> Option<Value> {
    if a.is_dne() || b.is_dne() {
        Some(Value::dne())
    } else if a.is_unk() || b.is_unk() {
        Some(Value::unk())
    } else {
        None
    }
}

/// Apply a binary numeric operation with int/float coercion.  Integer
/// arithmetic that overflows widens to float; integer division truncates
/// (QUEL-style); division by zero is an error.
pub fn numeric(op: NumOp, a: &Value, b: &Value) -> EvalResult<Value> {
    if let Some(n) = null_out(a, b) {
        return Ok(n);
    }
    let both_int =
        matches!(a, Value::Scalar(Scalar::Int4(_))) && matches!(b, Value::Scalar(Scalar::Int4(_)));
    let (x, y) = match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(EvalError::SortMismatch {
                op: "numeric",
                expected: "numeric scalar",
                found: format!("{} and {}", a.kind_name(), b.kind_name()),
            })
        }
    };
    if both_int {
        let (ia, ib) = (a.as_int().unwrap(), b.as_int().unwrap());
        let r: Option<i32> = match op {
            NumOp::Add => ia.checked_add(ib),
            NumOp::Sub => ia.checked_sub(ib),
            NumOp::Mul => ia.checked_mul(ib),
            NumOp::Div => {
                if ib == 0 {
                    return Err(EvalError::DivideByZero);
                }
                ia.checked_div(ib)
            }
        };
        if let Some(r) = r {
            return Ok(Value::int(r));
        }
        // overflow: fall through to float arithmetic
    }
    let r = match op {
        NumOp::Add => x + y,
        NumOp::Sub => x - y,
        NumOp::Mul => x * y,
        NumOp::Div => {
            if y == 0.0 {
                return Err(EvalError::DivideByZero);
            }
            x / y
        }
    };
    Ok(Value::float(r))
}

/// Numeric negation.
pub fn negate(a: &Value) -> EvalResult<Value> {
    if a.is_null() {
        return Ok(a.clone());
    }
    if let Some(i) = a.as_int() {
        return Ok(i
            .checked_neg()
            .map(Value::int)
            .unwrap_or_else(|| Value::float(-f64::from(i))));
    }
    match a.as_float() {
        Some(x) => Ok(Value::float(-x)),
        None => Err(EvalError::SortMismatch {
            op: "neg",
            expected: "numeric scalar",
            found: a.kind_name().to_string(),
        }),
    }
}

/// Occurrences of a collection input (multiset or array) for aggregation.
fn occurrences(v: &Value) -> EvalResult<Vec<&Value>> {
    match v {
        Value::Set(s) => Ok(s.iter_occurrences().collect()),
        Value::Array(a) => Ok(a.iter().collect()),
        _ => Err(EvalError::SortMismatch {
            op: "aggregate",
            expected: "multiset or array",
            found: v.kind_name().to_string(),
        }),
    }
}

/// `min` over all occurrences by the total value order; `dne` on empty.
pub fn min(v: &Value) -> EvalResult<Value> {
    if v.is_null() {
        return Ok(v.clone());
    }
    Ok(occurrences(v)?
        .into_iter()
        .filter(|x| !x.is_null())
        .min()
        .cloned()
        .unwrap_or_else(Value::dne))
}

/// `max` over all occurrences; `dne` on empty.
pub fn max(v: &Value) -> EvalResult<Value> {
    if v.is_null() {
        return Ok(v.clone());
    }
    Ok(occurrences(v)?
        .into_iter()
        .filter(|x| !x.is_null())
        .max()
        .cloned()
        .unwrap_or_else(Value::dne))
}

/// `count` of occurrences (duplicates counted; nulls counted — they are
/// occurrences, and `dne` can never occur in a multiset anyway).
pub fn count(v: &Value) -> EvalResult<Value> {
    if v.is_null() {
        return Ok(v.clone());
    }
    Ok(Value::int(occurrences(v)?.len() as i32))
}

/// Numeric `sum`; 0 on empty; `unk` if any occurrence is `unk`.
pub fn sum(v: &Value) -> EvalResult<Value> {
    if v.is_null() {
        return Ok(v.clone());
    }
    let mut acc = Value::int(0);
    for x in occurrences(v)? {
        if x.is_unk() {
            return Ok(Value::unk());
        }
        acc = numeric(NumOp::Add, &acc, x)?;
    }
    Ok(acc)
}

/// Numeric `avg`; `dne` on empty.
pub fn avg(v: &Value) -> EvalResult<Value> {
    if v.is_null() {
        return Ok(v.clone());
    }
    let occs = occurrences(v)?;
    if occs.is_empty() {
        return Ok(Value::dne());
    }
    let n = occs.len() as f64;
    let s = sum(v)?;
    if s.is_unk() {
        return Ok(Value::unk());
    }
    Ok(Value::float(
        s.as_float()
            .ok_or(EvalError::BadAggregate("non-numeric sum".into()))?
            / n,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[i32]) -> Value {
        Value::set(xs.iter().map(|&i| Value::int(i)))
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        assert_eq!(
            numeric(NumOp::Add, &Value::int(2), &Value::int(3)).unwrap(),
            Value::int(5)
        );
        assert_eq!(
            numeric(NumOp::Div, &Value::int(7), &Value::int(2)).unwrap(),
            Value::int(3)
        );
    }

    #[test]
    fn mixed_arithmetic_widens() {
        assert_eq!(
            numeric(NumOp::Mul, &Value::int(2), &Value::float(1.5)).unwrap(),
            Value::float(3.0)
        );
    }

    #[test]
    fn overflow_widens_to_float() {
        let r = numeric(NumOp::Add, &Value::int(i32::MAX), &Value::int(1)).unwrap();
        assert_eq!(r, Value::float(f64::from(i32::MAX) + 1.0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            numeric(NumOp::Div, &Value::int(1), &Value::int(0)),
            Err(EvalError::DivideByZero)
        );
    }

    #[test]
    fn null_propagation_dne_dominates() {
        assert_eq!(
            numeric(NumOp::Add, &Value::dne(), &Value::unk()).unwrap(),
            Value::dne()
        );
        assert_eq!(
            numeric(NumOp::Add, &Value::unk(), &Value::int(1)).unwrap(),
            Value::unk()
        );
    }

    #[test]
    fn aggregates_over_multisets() {
        let s = set(&[3, 1, 4, 1]);
        assert_eq!(min(&s).unwrap(), Value::int(1));
        assert_eq!(max(&s).unwrap(), Value::int(4));
        assert_eq!(count(&s).unwrap(), Value::int(4));
        assert_eq!(sum(&s).unwrap(), Value::int(9));
        assert_eq!(avg(&s).unwrap(), Value::float(2.25));
    }

    #[test]
    fn aggregates_over_arrays() {
        let a = Value::array([Value::int(5), Value::int(5)]);
        assert_eq!(count(&a).unwrap(), Value::int(2));
        assert_eq!(sum(&a).unwrap(), Value::int(10));
    }

    #[test]
    fn empty_aggregate_semantics() {
        let e = set(&[]);
        assert_eq!(min(&e).unwrap(), Value::dne());
        assert_eq!(max(&e).unwrap(), Value::dne());
        assert_eq!(avg(&e).unwrap(), Value::dne());
        assert_eq!(count(&e).unwrap(), Value::int(0));
        assert_eq!(sum(&e).unwrap(), Value::int(0));
    }

    #[test]
    fn unk_poisons_sum_and_avg() {
        let s = Value::set([Value::int(1), Value::unk()]);
        assert_eq!(sum(&s).unwrap(), Value::unk());
        assert_eq!(avg(&s).unwrap(), Value::unk());
        // …but min/max skip nulls (they select an existing element).
        assert_eq!(min(&s).unwrap(), Value::int(1));
    }

    #[test]
    fn aggregate_of_scalar_is_sort_error() {
        assert!(min(&Value::int(1)).is_err());
    }
}
