//! Three-valued predicate logic (Section 3.2.4).
//!
//! "If the predicate (P) evaluated with the input structure S is true, then
//! COMP_P(S) = S.  If the value of the predicate is UNK the COMP operator
//! returns unk.  If the value of the predicate is F then COMP returns dne."
//!
//! Comparisons touching the null constants follow the closed-world-opened
//! interpretation of \[Gott88\] the paper adopts: a comparison against a
//! value that *does not exist* (`dne`) is **false**, while a comparison
//! against an *unknown* value (`unk`) is **unknown**.  Connectives are
//! Kleene's strong three-valued ∧ and ¬.

use crate::expr::CmpOp;
use excess_types::Value;

/// A three-valued truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// True.
    T,
    /// False.
    F,
    /// Unknown.
    U,
}

impl Truth {
    /// Kleene strong conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (F, _) | (_, F) => F,
            (T, T) => T,
            _ => U,
        }
    }

    /// Kleene negation (three-valued ¬ — intentionally not `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::T => Truth::F,
            Truth::F => Truth::T,
            Truth::U => Truth::U,
        }
    }

    /// Kleene strong disjunction (used by derived rules, e.g. rule 4's
    /// disjunctive selection split).
    pub fn or(self, other: Truth) -> Truth {
        self.not().and(other.not()).not()
    }
}

/// Compare two evaluated operands.  `None` signals a sort error (only `in`
/// with a non-multiset right operand).
pub fn compare(l: &Value, op: CmpOp, r: &Value) -> Option<Truth> {
    if l.is_dne() || r.is_dne() {
        return Some(Truth::F);
    }
    if l.is_unk() || r.is_unk() {
        return Some(Truth::U);
    }
    let t = match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
        CmpOp::In => {
            let set = r.as_set()?;
            set.contains(l)
        }
    };
    Some(if t { Truth::T } else { Truth::F })
}

/// The value COMP returns given the predicate's truth value and its input.
pub fn comp_result(t: Truth, input: Value) -> Value {
    match t {
        Truth::T => input,
        Truth::F => Value::dne(),
        Truth::U => Value::unk(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Truth::*;

    #[test]
    fn kleene_tables() {
        assert_eq!(T.and(T), T);
        assert_eq!(T.and(U), U);
        assert_eq!(F.and(U), F);
        assert_eq!(U.and(U), U);
        assert_eq!(U.not(), U);
        assert_eq!(T.or(U), T);
        assert_eq!(F.or(U), U);
        assert_eq!(F.or(F), F);
    }

    #[test]
    fn dne_comparisons_are_false() {
        assert_eq!(compare(&Value::dne(), CmpOp::Eq, &Value::int(1)), Some(F));
        assert_eq!(compare(&Value::int(1), CmpOp::Ne, &Value::dne()), Some(F));
    }

    #[test]
    fn unk_comparisons_are_unknown() {
        assert_eq!(compare(&Value::unk(), CmpOp::Eq, &Value::int(1)), Some(U));
        // dne wins over unk (the left dne short-circuits to F).
        assert_eq!(compare(&Value::dne(), CmpOp::Eq, &Value::unk()), Some(F));
    }

    #[test]
    fn membership_is_value_equality_against_every_occurrence() {
        let s = Value::set([Value::int(1), Value::int(2)]);
        assert_eq!(compare(&Value::int(2), CmpOp::In, &s), Some(T));
        assert_eq!(compare(&Value::int(3), CmpOp::In, &s), Some(F));
        assert_eq!(compare(&Value::int(3), CmpOp::In, &Value::int(1)), None);
    }

    #[test]
    fn comp_result_maps_truth_to_value() {
        assert_eq!(comp_result(T, Value::int(5)), Value::int(5));
        assert_eq!(comp_result(F, Value::int(5)), Value::dne());
        assert_eq!(comp_result(U, Value::int(5)), Value::unk());
    }

    #[test]
    fn paper_comp_example() {
        // A = (1 4 6 4 1), predicate fld2 = fld4 → COMP_E(A) = A.
        let a = Value::tuple([
            ("fld1", Value::int(1)),
            ("fld2", Value::int(4)),
            ("fld3", Value::int(6)),
            ("fld4", Value::int(4)),
            ("fld5", Value::int(1)),
        ]);
        let t = a.as_tuple().unwrap();
        let fld2 = t.extract("fld2").unwrap();
        let fld4 = t.extract("fld4").unwrap();
        assert_eq!(compare(fld2, CmpOp::Eq, fld4), Some(T));
        assert_eq!(comp_result(T, a.clone()), a);
    }
}
