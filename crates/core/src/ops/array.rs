//! Array operator kernels (Section 3.2.3).
//!
//! "Arrays in the algebra are one-dimensional and variable-length"; four of
//! the nine operators (`ARR_COLLAPSE`, `ARR_DIFF`, `ARR_DE`, `ARR_CROSS`)
//! are "order-preserving analogs of SET_COLLAPSE, −, DE, and ×".  Bounds
//! are 1-based integers "≥ 1 or the special token `last`".

use crate::expr::Bound;
use excess_types::Value;

/// Resolve a [`Bound`] against an array of length `len` to a 1-based index.
pub fn resolve_bound(b: Bound, len: usize) -> usize {
    match b {
        Bound::At(n) => n,
        Bound::Last => len,
    }
}

/// `ARR_EXTRACT_n(A)`: the n-th element *itself* ("the result is not an
/// array containing the element but simply the element itself").
/// Out-of-range extraction yields `dne` — the element does not exist.
pub fn extract(a: &[Value], b: Bound) -> Value {
    let n = resolve_bound(b, a.len());
    if n == 0 || n > a.len() {
        Value::dne()
    } else {
        a[n - 1].clone()
    }
}

/// `SUBARR_{m,n}(A)`: elements m..=n in input order.  An empty or inverted
/// range yields `[]`; ranges are clamped to the array.
pub fn subarr(a: &[Value], m: Bound, n: Bound) -> Vec<Value> {
    let lo = resolve_bound(m, a.len()).max(1);
    let hi = resolve_bound(n, a.len()).min(a.len());
    if lo > hi {
        return Vec::new();
    }
    a[lo - 1..hi].to_vec()
}

/// `ARR_CAT(A, B)`: all of A (in order) followed by all of B (in order).
pub fn cat(a: &[Value], b: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// `ARR_COLLAPSE(A)`: order-preserving flatten of an array of arrays.
/// Returns `None` if a member is not an array.
pub fn collapse(a: &[Value]) -> Option<Vec<Value>> {
    let mut out = Vec::new();
    for v in a {
        out.extend_from_slice(v.as_array()?);
    }
    Some(out)
}

/// `ARR_DE(A)`: order-preserving duplicate elimination — the first
/// occurrence of each value is kept in place.
pub fn dup_elim(a: &[Value]) -> Vec<Value> {
    let mut seen = std::collections::BTreeSet::new();
    a.iter()
        .filter(|v| seen.insert((*v).clone()))
        .cloned()
        .collect()
}

/// `ARR_DIFF(A, B)`: order-preserving analog of multiset difference — each
/// occurrence in B cancels the *leftmost* remaining equal occurrence in A;
/// survivors keep their input order.
pub fn diff(a: &[Value], b: &[Value]) -> Vec<Value> {
    use std::collections::BTreeMap;
    let mut budget: BTreeMap<&Value, u64> = BTreeMap::new();
    for v in b {
        *budget.entry(v).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for v in a {
        match budget.get_mut(v) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(v.clone()),
        }
    }
    out
}

/// `ARR_CROSS(A, B)`: order-preserving analog of × — pairs in
/// lexicographic position order `(a1,b1), (a1,b2), …, (a2,b1), …`.
pub fn cross(a: &[Value], b: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push(Value::pair(x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(xs: &[i32]) -> Vec<Value> {
        xs.iter().map(|&i| Value::int(i)).collect()
    }

    #[test]
    fn extract_is_the_element_itself() {
        let a = arr(&[10, 20, 30]);
        assert_eq!(extract(&a, Bound::At(2)), Value::int(20));
        assert_eq!(extract(&a, Bound::Last), Value::int(30));
    }

    #[test]
    fn extract_out_of_range_is_dne() {
        let a = arr(&[10]);
        assert_eq!(extract(&a, Bound::At(5)), Value::dne());
        assert_eq!(extract(&a, Bound::At(0)), Value::dne());
        assert_eq!(extract(&[], Bound::Last), Value::dne());
    }

    #[test]
    fn subarr_clamps_and_orders() {
        let a = arr(&[1, 2, 3, 4, 5]);
        assert_eq!(subarr(&a, Bound::At(2), Bound::At(4)), arr(&[2, 3, 4]));
        assert_eq!(subarr(&a, Bound::At(3), Bound::Last), arr(&[3, 4, 5]));
        assert_eq!(subarr(&a, Bound::At(4), Bound::At(2)), arr(&[]));
        assert_eq!(subarr(&a, Bound::At(4), Bound::At(99)), arr(&[4, 5]));
    }

    #[test]
    fn cat_preserves_both_orders() {
        assert_eq!(cat(&arr(&[1, 2]), &arr(&[3])), arr(&[1, 2, 3]));
        // Rule 16 (associativity):
        let (a, b, c) = (arr(&[1]), arr(&[2, 3]), arr(&[4]));
        assert_eq!(cat(&a, &cat(&b, &c)), cat(&cat(&a, &b), &c));
    }

    #[test]
    fn collapse_flattens_in_order() {
        let nested = vec![
            Value::array(arr(&[1, 2])),
            Value::array(arr(&[])),
            Value::array(arr(&[3])),
        ];
        assert_eq!(collapse(&nested).unwrap(), arr(&[1, 2, 3]));
        assert!(collapse(&arr(&[1])).is_none());
    }

    #[test]
    fn de_keeps_first_occurrence_in_place() {
        assert_eq!(dup_elim(&arr(&[3, 1, 3, 2, 1])), arr(&[3, 1, 2]));
    }

    #[test]
    fn diff_cancels_leftmost() {
        assert_eq!(diff(&arr(&[1, 2, 1, 3, 1]), &arr(&[1, 1])), arr(&[2, 3, 1]));
        assert_eq!(diff(&arr(&[1]), &arr(&[2])), arr(&[1]));
    }

    #[test]
    fn cross_is_position_ordered() {
        let out = cross(&arr(&[1, 2]), &arr(&[7, 8]));
        assert_eq!(
            out,
            vec![
                Value::pair(Value::int(1), Value::int(7)),
                Value::pair(Value::int(1), Value::int(8)),
                Value::pair(Value::int(2), Value::int(7)),
                Value::pair(Value::int(2), Value::int(8)),
            ]
        );
    }
}
