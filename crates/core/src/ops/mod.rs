//! Operator kernels.
//!
//! The multiset and tuple kernels live with their data structures in
//! `excess-types` ([`excess_types::MultiSet`], [`excess_types::Tuple`]);
//! this module holds the array kernels, the three-valued predicate logic,
//! and the aggregate functions.  The evaluator in [`mod@crate::eval`] wires
//! them to the expression AST.

pub mod aggregate;
pub mod array;
pub mod predicate;
