//! Evaluation errors.

use excess_types::TypeError;
use std::fmt;

/// Errors raised while evaluating an algebra expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum EvalError {
    /// An operator received a structure of the wrong sort, e.g. `DE` of a
    /// tuple.  The algebra is many-sorted; this is the dynamic check.
    SortMismatch {
        op: &'static str,
        expected: &'static str,
        found: String,
    },
    /// `INPUT` used outside any binder (or at too great a depth).
    UnboundInput(usize),
    /// A named top-level object is not in the catalog.
    UnknownObject(String),
    /// Wrong number of arguments to a built-in function.
    Arity {
        func: &'static str,
        expected: usize,
        found: usize,
    },
    /// An error bubbled up from the type system (dangling OID, domain
    /// violation on REF, …).
    Type(TypeError),
    /// An aggregate saw a non-numeric/non-comparable element.
    BadAggregate(String),
    /// A switch-table dispatch found no arm for an element's type.
    NoDispatchArm { ty: String },
    /// Division by zero.
    DivideByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::SortMismatch {
                op,
                expected,
                found,
            } => {
                write!(f, "{op}: expected {expected}, found {found}")
            }
            EvalError::UnboundInput(d) => write!(f, "INPUT^{d} used outside a binder"),
            EvalError::UnknownObject(n) => write!(f, "unknown top-level object `{n}`"),
            EvalError::Arity {
                func,
                expected,
                found,
            } => {
                write!(f, "{func}: expected {expected} arguments, found {found}")
            }
            EvalError::Type(e) => write!(f, "{e}"),
            EvalError::BadAggregate(s) => write!(f, "bad aggregate input: {s}"),
            EvalError::NoDispatchArm { ty } => {
                write!(f, "switch-table dispatch has no arm for type `{ty}`")
            }
            EvalError::DivideByZero => f.write_str("division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TypeError> for EvalError {
    fn from(e: TypeError) -> Self {
        EvalError::Type(e)
    }
}

/// Result alias for evaluation.
pub type EvalResult<T> = std::result::Result<T, EvalError>;
