//! Static plan verification: every diagnostic, not just the first.
//!
//! [`infer`](crate::infer) stops at the first ill-typed node; this module
//! walks the whole plan and collects *all* diagnostics, each tagged with
//! the node path (child indices from the root, [`Expr::children`] order —
//! the same scheme the optimizer's `neighbors_at`, the profiler, and
//! [`InferError`](crate::infer::InferError) use) and a severity:
//!
//! * [`Severity::Error`] — the plan violates a static well-formedness
//!   condition of the algebra: an operator applied outside its sort
//!   signature (§3.2), incompatible element schemas at ∪/∩/⊎/− and
//!   `rel_join`, OID-domain violations (the five rules of §3.1),
//!   ill-typed `COMP` predicates, unbound `INPUT` occurrences, unknown
//!   objects/types/fields, wrong arities, out-of-range array bounds.
//! * [`Severity::Lint`] — legal but suspicious shapes: dead projections,
//!   `REF∘DEREF` round-trips (rules 28/28a territory), `DE` above `GRP`
//!   (rules 6/8), idempotent `DE∘DE` (rel4), binders that ignore their
//!   variable, comparisons against `dne`/`unk` literals that three-valued
//!   logic can never satisfy, exact-type filters that can never match.
//!
//! A child that fails sort-checking reports once and poisons only the
//! schemas derived from it (no cascade of follow-on errors), while
//! independent subtrees keep reporting — a plan with two unrelated
//! mistakes yields two diagnostics.
//!
//! The optimizer's rewrite-soundness gate is built on this walk: a rule
//! application that changes the deep-resolved output schema or introduces
//! a new error diagnostic is refused (see `excess-optimizer`).

use crate::expr::{Bound, CmpOp, Expr, Func, Pred};
use crate::infer::{value_schema, SchemaCatalog};
use crate::profile::{path_string, NodePath};
use excess_types::{SchemaType, TypeRegistry, Value};
use std::fmt;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The plan is statically ill-formed; evaluation may fail or produce
    /// garbage.
    Error,
    /// Legal but suspicious — usually a shape a transformation rule could
    /// simplify away, or a predicate that can never hold.
    Lint,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Lint => "lint",
        })
    }
}

/// One finding of the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where in the plan (child indices from the root; empty = root).
    pub path: NodePath,
    /// Error or lint.
    pub severity: Severity,
    /// Stable machine-readable class, e.g. `sort-mismatch`.
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity,
            self.code,
            path_string(&self.path),
            self.message
        )
    }
}

/// The verifier's result: every diagnostic plus the output schema (when
/// the plan is well-sorted enough for one to exist).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in walk (preorder) discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// The inferred output schema, if the root's schema is determined.
    pub schema: Option<SchemaType>,
}

impl Report {
    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The lint-severity findings.
    pub fn lints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Lint)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of lints.
    pub fn lint_count(&self) -> usize {
        self.lints().count()
    }

    /// A plan is *clean* when it has no errors (lints are allowed — they
    /// flag legal shapes).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// All diagnostics rendered one per line (empty string when none).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

/// Statically verify a closed plan against the catalog and type registry,
/// collecting every diagnostic.
pub fn verify(e: &Expr, cat: &dyn SchemaCatalog, reg: &TypeRegistry) -> Report {
    let mut v = Verifier {
        cat,
        reg,
        diags: Vec::new(),
        path: NodePath::new(),
        env: Vec::new(),
    };
    let schema = v.check(e);
    let mut diagnostics = v.diags;
    // The property-analysis lint family (PR 7): run the dataflow pass in
    // data-free structural mode and append its findings.  Lints never
    // affect `is_clean` or the rewrite-soundness gate (errors only).
    let analysis = crate::analysis::analyze(e, &crate::catalog::EmptyCatalog);
    diagnostics.extend(crate::analysis::property_lints(e, &analysis));
    Report {
        diagnostics,
        schema,
    }
}

/// Fully resolve `Named` types through the registry (depth-bounded so a
/// malformed recursive registry cannot hang the gate).  `Ref` types keep
/// their name — reference indirection is where recursion legitimately
/// lives, so resolving through it would not terminate.
pub fn resolve_deep(t: &SchemaType, reg: &TypeRegistry) -> SchemaType {
    fn go(t: &SchemaType, reg: &TypeRegistry, fuel: usize) -> SchemaType {
        if fuel == 0 {
            return t.clone();
        }
        match t {
            SchemaType::Named(n) => {
                match reg.lookup(n).ok().and_then(|id| reg.full_body(id).ok()) {
                    Some(body) => go(&body, reg, fuel - 1),
                    None => t.clone(),
                }
            }
            SchemaType::Tup(fs) => SchemaType::Tup(
                fs.iter()
                    .map(|(n, ft)| (n.clone(), go(ft, reg, fuel - 1)))
                    .collect(),
            ),
            SchemaType::Set(e) => SchemaType::set(go(e, reg, fuel - 1)),
            SchemaType::Arr { elem, len } => SchemaType::Arr {
                elem: Box::new(go(elem, reg, fuel - 1)),
                len: *len,
            },
            SchemaType::Val(_) | SchemaType::Ref(_) => t.clone(),
        }
    }
    go(t, reg, 32)
}

/// The element schema of an empty collection literal or a null — "no
/// information" (see [`value_schema`]); compatible with anything.
fn is_unknown(t: &SchemaType) -> bool {
    matches!(t, SchemaType::Tup(fs) if fs.is_empty())
}

fn is_numeric(t: &SchemaType) -> bool {
    *t == SchemaType::int4() || *t == SchemaType::float4()
}

struct Verifier<'a> {
    cat: &'a dyn SchemaCatalog,
    reg: &'a TypeRegistry,
    diags: Vec<Diagnostic>,
    path: NodePath,
    /// Binder element schemas, innermost last; `None` = unknown because an
    /// earlier error poisoned it (no cascaded diagnostics).
    env: Vec<Option<SchemaType>>,
}

impl<'a> Verifier<'a> {
    fn emit(&mut self, severity: Severity, code: &'static str, message: String) {
        self.diags.push(Diagnostic {
            path: self.path.clone(),
            severity,
            code,
            message,
        });
    }

    fn error(&mut self, code: &'static str, message: String) {
        self.emit(Severity::Error, code, message);
    }

    fn lint(&mut self, code: &'static str, message: String) {
        self.emit(Severity::Lint, code, message);
    }

    fn child(&mut self, i: usize, e: &Expr) -> Option<SchemaType> {
        self.path.push(i);
        let r = self.check(e);
        self.path.pop();
        r
    }

    /// Resolve `Named` one level; unknown names report `unknown-type`.
    fn resolve(&mut self, t: SchemaType) -> Option<SchemaType> {
        match t {
            SchemaType::Named(n) => match self.reg.lookup(&n) {
                Ok(id) => match self.reg.full_body(id) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        self.error("unknown-type", e.to_string());
                        None
                    }
                },
                Err(_) => {
                    self.error("unknown-type", format!("unknown type `{n}`"));
                    None
                }
            },
            other => Some(other),
        }
    }

    fn expect_set(&mut self, t: Option<SchemaType>, op: &str) -> Option<SchemaType> {
        match self.resolve(t?)? {
            SchemaType::Set(e) => Some(*e),
            other => {
                self.error(
                    "sort-mismatch",
                    format!("{op}: expected multiset, found {other}"),
                );
                None
            }
        }
    }

    fn expect_arr(&mut self, t: Option<SchemaType>, op: &str) -> Option<SchemaType> {
        match self.resolve(t?)? {
            SchemaType::Arr { elem, .. } => Some(*elem),
            other => {
                self.error(
                    "sort-mismatch",
                    format!("{op}: expected array, found {other}"),
                );
                None
            }
        }
    }

    fn expect_tup(&mut self, t: Option<SchemaType>, op: &str) -> Option<Vec<(String, SchemaType)>> {
        match self.resolve(t?)? {
            SchemaType::Tup(fs) => Some(fs),
            other => {
                self.error(
                    "sort-mismatch",
                    format!("{op}: expected tuple, found {other}"),
                );
                None
            }
        }
    }

    /// Least common ancestor of two named types, if any: the most-derived
    /// type both inherit from (§3.1 rule 3 makes its domain a superset of
    /// both).  Ties break toward the earliest-defined type.
    fn common_ancestor(&self, a: excess_types::TypeId, b: excess_types::TypeId) -> Option<String> {
        if self.reg.is_subtype_or_self(a, b) {
            return Some(self.reg.name_of(b).to_string());
        }
        if self.reg.is_subtype_or_self(b, a) {
            return Some(self.reg.name_of(a).to_string());
        }
        let aa: Vec<_> = self.reg.ancestors(a);
        let ab = self.reg.ancestors(b);
        let common: Vec<_> = aa.into_iter().filter(|t| ab.contains(t)).collect();
        // Most derived: no other common ancestor strictly below it.
        common
            .iter()
            .find(|&&c| {
                !common
                    .iter()
                    .any(|&o| o != c && self.reg.is_subtype_or_self(o, c))
            })
            .map(|&c| self.reg.name_of(c).to_string())
    }

    /// Compatibility join of two element schemas (for ∪/∩/⊎/− and array
    /// concatenation): `None` means incompatible.  Named types join to
    /// their least common ancestor — `P::exact::T₁ ⊎ P::exact::T₂` extent
    /// plans are the motivating case.
    fn join(&mut self, a: &SchemaType, b: &SchemaType) -> Option<SchemaType> {
        if a == b {
            return Some(a.clone());
        }
        if is_unknown(a) {
            return Some(b.clone());
        }
        if is_unknown(b) {
            return Some(a.clone());
        }
        match (a, b) {
            (SchemaType::Named(x), SchemaType::Named(y)) => {
                match (self.reg.lookup(x), self.reg.lookup(y)) {
                    (Ok(ix), Ok(iy)) => match self.common_ancestor(ix, iy) {
                        Some(ca) => Some(SchemaType::named(ca)),
                        None => {
                            // No common supertype: fall back to structure.
                            let bx = self.reg.full_body(ix).ok()?;
                            let by = self.reg.full_body(iy).ok()?;
                            self.join(&bx, &by)
                        }
                    },
                    _ => None,
                }
            }
            (SchemaType::Named(x), other) | (other, SchemaType::Named(x)) => {
                let body = self
                    .reg
                    .lookup(x)
                    .ok()
                    .and_then(|id| self.reg.full_body(id).ok())?;
                self.join(&body, other)
            }
            (SchemaType::Ref(x), SchemaType::Ref(y)) => {
                match (self.reg.lookup(x), self.reg.lookup(y)) {
                    (Ok(ix), Ok(iy)) => self.common_ancestor(ix, iy).map(SchemaType::reference),
                    _ => None,
                }
            }
            (SchemaType::Tup(fa), SchemaType::Tup(fb)) => {
                if fa.len() != fb.len() {
                    return None;
                }
                let mut out = Vec::with_capacity(fa.len());
                for ((na, ta), (nb, tb)) in fa.iter().zip(fb) {
                    if na != nb {
                        return None;
                    }
                    out.push((na.clone(), self.join(ta, tb)?));
                }
                Some(SchemaType::Tup(out))
            }
            (SchemaType::Set(ea), SchemaType::Set(eb)) => Some(SchemaType::set(self.join(ea, eb)?)),
            (SchemaType::Arr { elem: ea, len: la }, SchemaType::Arr { elem: eb, len: lb }) => {
                Some(SchemaType::Arr {
                    elem: Box::new(self.join(ea, eb)?),
                    len: if la == lb { *la } else { None },
                })
            }
            (SchemaType::Val(_), SchemaType::Val(_)) => {
                if is_numeric(a) && is_numeric(b) {
                    Some(SchemaType::float4())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Join the element schemas of a binary multiset/array operator,
    /// reporting `schema-incompatible` at the current node on failure.
    fn join_or_report(
        &mut self,
        a: Option<SchemaType>,
        b: Option<SchemaType>,
        op: &str,
    ) -> Option<SchemaType> {
        let (a, b) = (a?, b?);
        match self.join(&a, &b) {
            Some(j) => Some(j),
            None => {
                self.error(
                    "schema-incompatible",
                    format!("{op}: element schemas {a} and {b} are incompatible"),
                );
                None
            }
        }
    }

    /// Can values of these schemas be meaningfully compared (`=`, `<`, …)?
    fn comparable(&mut self, a: &SchemaType, b: &SchemaType) -> bool {
        self.join(a, b).is_some()
    }

    /// §3.1 rule 4: refs into types with no shared descendant can never be
    /// equal (their OID domains are disjoint); rules 3 and 5 are exactly
    /// the cases where a shared descendant (or subtype chain) exists.
    fn check_ref_comparison(&mut self, a: &SchemaType, b: &SchemaType) {
        let (SchemaType::Ref(x), SchemaType::Ref(y)) = (a, b) else {
            return;
        };
        let (Ok(ix), Ok(iy)) = (self.reg.lookup(x), self.reg.lookup(y)) else {
            return; // unknown-type reported where the ref was built
        };
        if !self.reg.shares_descendant(ix, iy) {
            self.error(
                "oid-domain",
                format!(
                    "comparing `ref {x}` with `ref {y}`: the types share no descendant, \
                     so Odom({x}) ∩ Odom({y}) = ∅ (§3.1 rule 4) — the comparison can \
                     never be true"
                ),
            );
        }
    }

    fn binder_lints(&mut self, body: &Expr, op: &str) {
        if !body.mentions_input(0) {
            let uses_outer = (1..=self.env.len()).any(|d| body.mentions_input(d));
            if uses_outer {
                self.lint(
                    "lint-shadowed-binder",
                    format!(
                        "{op} body ignores its own INPUT but uses an outer binder's — \
                         the inner binder shadows a variable it never consults"
                    ),
                );
            } else {
                self.lint(
                    "lint-unused-binder",
                    format!("{op} body never mentions INPUT — it is constant per occurrence"),
                );
            }
        }
    }

    fn check(&mut self, e: &Expr) -> Option<SchemaType> {
        match e {
            Expr::Input(d) => {
                let len = self.env.len();
                match len.checked_sub(1 + d).and_then(|i| self.env.get(i)) {
                    Some(slot) => slot.clone(),
                    None => {
                        self.error(
                            "unbound-input",
                            format!("INPUT^{d} is unbound ({len} enclosing binder(s))"),
                        );
                        None
                    }
                }
            }
            Expr::Named(n) => match self.cat.object_schema(n) {
                Some(t) => Some(t),
                None => {
                    self.error("unknown-object", format!("unknown object `{n}`"));
                    None
                }
            },
            Expr::Const(v) => Some(value_schema(v, self.reg)),

            Expr::AddUnion(a, b) | Expr::Diff(a, b) | Expr::Union(a, b) | Expr::Intersect(a, b) => {
                let op = match e {
                    Expr::AddUnion(..) => "⊎",
                    Expr::Diff(..) => "−",
                    Expr::Union(..) => "∪",
                    _ => "∩",
                };
                let ta = self.child(0, a);
                let tb = self.child(1, b);
                let ea = self.expect_set(ta, op);
                let eb = self.expect_set(tb, op);
                if let Expr::AddUnion(..) = e {
                    // ⊎ is pure bag concatenation — it never compares
                    // elements, and the dispatch2 rule deliberately builds
                    // heterogeneous ⊎ plans from switch tables.  Flag the
                    // mix as suspicious, keep infer's left bias.
                    let (ea, eb) = (ea?, eb?);
                    let elem = match self.join(&ea, &eb) {
                        Some(j) => j,
                        None => {
                            self.lint(
                                "lint-heterogeneous-union",
                                format!(
                                    "⊎ mixes element schemas {ea} and {eb}; downstream \
                                     operators see only the left-hand shape"
                                ),
                            );
                            ea
                        }
                    };
                    return Some(SchemaType::set(elem));
                }
                Some(SchemaType::set(self.join_or_report(ea, eb, op)?))
            }
            Expr::MakeSet(a) => Some(SchemaType::set(self.child(0, a)?)),
            Expr::SetApply {
                input,
                body,
                only_types,
            } => {
                let ti = self.child(0, input);
                let input_elem = self.expect_set(ti, "SET_APPLY");
                let elem = match only_types {
                    Some(ts) => {
                        if ts.is_empty() {
                            self.error(
                                "sort-mismatch",
                                "SET_APPLY: empty exact-type filter".to_string(),
                            );
                        }
                        for t in ts {
                            if self.reg.lookup(t).is_err() {
                                self.error(
                                    "unknown-type",
                                    format!("SET_APPLY type filter names unknown type `{t}`"),
                                );
                            }
                        }
                        // A filter type that is not a descendant of the
                        // element type can never match (§3.1 rules 3/4:
                        // only subtype OIDs flow into the element's
                        // domain).
                        if let Some(SchemaType::Named(en)) = &input_elem {
                            if let Ok(eid) = self.reg.lookup(en) {
                                for t in ts {
                                    if let Ok(tid) = self.reg.lookup(t) {
                                        if !self.reg.is_subtype_or_self(tid, eid) {
                                            self.lint(
                                                "lint-dead-type-filter",
                                                format!(
                                                    "exact-type filter `{t}` can never match \
                                                     elements of `{en}` (`{t}` does not \
                                                     inherit `{en}` — §3.1 rules 3/4)"
                                                ),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        ts.first().map(|t| SchemaType::named(t.clone()))
                    }
                    None => input_elem,
                };
                self.binder_lints(body, "SET_APPLY");
                self.env.push(elem);
                let out = self.child(1, body);
                self.env.pop();
                Some(SchemaType::set(out?))
            }
            Expr::Group { input, by } => {
                let elem = {
                    let ti = self.child(0, input);
                    self.expect_set(ti, "GRP")
                };
                self.binder_lints(by, "GRP");
                self.env.push(elem.clone());
                let key = self.child(1, by);
                self.env.pop();
                let _ = key;
                Some(SchemaType::set(SchemaType::set(elem?)))
            }
            Expr::DupElim(a) => {
                match &**a {
                    Expr::DupElim(_) => self.lint(
                        "lint-de-de",
                        "DE(DE(…)) — duplicate elimination is idempotent (rel4)".to_string(),
                    ),
                    Expr::Group { .. } => self.lint(
                        "lint-de-above-group",
                        "DE above GRP — GRP's equivalence classes are already \
                         duplicate-free (rule 6)"
                            .to_string(),
                    ),
                    Expr::SetApply { input, .. } if matches!(&**input, Expr::Group { .. }) => self
                        .lint(
                            "lint-de-above-group",
                            "DE above SET_APPLY(GRP) — rule 8 could push the DE through \
                             the GRP (dup-aware distinct)"
                                .to_string(),
                        ),
                    _ => {}
                }
                let t = self.child(0, a);
                let _ = self.expect_set(t.clone(), "DE")?;
                t
            }
            Expr::Cross(a, b) => {
                let ta = self.child(0, a);
                let tb = self.child(1, b);
                let ea = self.expect_set(ta, "×")?;
                let eb = self.expect_set(tb, "×")?;
                Some(SchemaType::set(SchemaType::tuple([
                    ("fst", ea),
                    ("snd", eb),
                ])))
            }
            Expr::SetCollapse(a) => {
                let t = self.child(0, a);
                let outer = self.expect_set(t, "SET_COLLAPSE");
                let inner = self.expect_set(outer, "SET_COLLAPSE")?;
                Some(SchemaType::set(inner))
            }

            Expr::Project(a, names) => {
                let t = self.child(0, a);
                let fs = self.expect_tup(t, "π")?;
                let mut out = Vec::with_capacity(names.len());
                let mut all_found = true;
                for n in names {
                    match fs.iter().find(|(m, _)| m == n) {
                        Some((_, ft)) => out.push((n.clone(), ft.clone())),
                        None => {
                            all_found = false;
                            self.error("no-such-field", format!("π: no field `{n}`"));
                        }
                    }
                }
                if all_found
                    && names.len() == fs.len()
                    && names.iter().zip(&fs).all(|(n, (m, _))| n == m)
                {
                    self.lint(
                        "lint-dead-projection",
                        "π projects every field in its original order — the projection \
                         is an identity"
                            .to_string(),
                    );
                }
                if !all_found {
                    return None;
                }
                Some(SchemaType::Tup(out))
            }
            Expr::TupCat(a, b) => {
                let ta = self.child(0, a);
                let tb = self.child(1, b);
                let fa = self.expect_tup(ta, "TUP_CAT")?;
                let fb = self.expect_tup(tb, "TUP_CAT")?;
                Some(SchemaType::Tup(crate::infer::cat_fields(fa, fb)))
            }
            Expr::TupExtract(a, n) => {
                let t = self.child(0, a);
                let fs = self.expect_tup(t, "TUP_EXTRACT")?;
                match fs.into_iter().find(|(m, _)| m == n) {
                    Some((_, ft)) => Some(ft),
                    None => {
                        self.error("no-such-field", format!("TUP_EXTRACT: no field `{n}`"));
                        None
                    }
                }
            }
            Expr::MakeTup(a, n) => Some(SchemaType::Tup(vec![(n.clone(), self.child(0, a)?)])),

            Expr::MakeArr(a) => Some(SchemaType::array(self.child(0, a)?)),
            Expr::ArrExtract(a, bound) => {
                let t = self.child(0, a);
                let resolved = t.clone().and_then(|x| self.resolve(x));
                if let Bound::At(n) = bound {
                    if *n == 0 {
                        self.error(
                            "arr-bound",
                            "ARR_EXTRACT: array indices are 1-based; index 0 never exists"
                                .to_string(),
                        );
                    } else if let Some(SchemaType::Arr { len: Some(len), .. }) = &resolved {
                        if *n > *len {
                            self.error(
                                "arr-bound",
                                format!(
                                    "ARR_EXTRACT: index {n} out of bounds for an array of \
                                     fixed length {len}"
                                ),
                            );
                        }
                    }
                }
                self.expect_arr(t, "ARR_EXTRACT")
            }
            Expr::ArrApply { input, body } => {
                let elem = {
                    let t = self.child(0, input);
                    self.expect_arr(t, "ARR_APPLY")
                };
                self.binder_lints(body, "ARR_APPLY");
                self.env.push(elem);
                let out = self.child(1, body);
                self.env.pop();
                Some(SchemaType::array(out?))
            }
            Expr::SubArr(a, m, n) => {
                if matches!(m, Bound::At(0)) || matches!(n, Bound::At(0)) {
                    self.error(
                        "arr-bound",
                        "SUBARR: array indices are 1-based; bound 0 never exists".to_string(),
                    );
                }
                if let (Bound::At(lo), Bound::At(hi)) = (m, n) {
                    if lo > hi {
                        self.lint(
                            "lint-empty-subarr",
                            format!("SUBARR[{lo},{hi}]: lower bound above upper — always empty"),
                        );
                    }
                }
                let t = self.child(0, a);
                let elem = self.expect_arr(t, "SUBARR")?;
                Some(SchemaType::array(elem))
            }
            Expr::ArrDupElim(a) => {
                let t = self.child(0, a);
                let elem = self.expect_arr(t, "ARR_DE")?;
                Some(SchemaType::array(elem))
            }
            Expr::ArrCat(a, b) | Expr::ArrDiff(a, b) => {
                let op = if matches!(e, Expr::ArrCat(..)) {
                    "ARR_CAT"
                } else {
                    "ARR_DIFF"
                };
                let ta = self.child(0, a);
                let tb = self.child(1, b);
                let ea = self.expect_arr(ta, op);
                let eb = self.expect_arr(tb, op);
                Some(SchemaType::array(self.join_or_report(ea, eb, op)?))
            }
            Expr::ArrCollapse(a) => {
                let t = self.child(0, a);
                let outer = self.expect_arr(t, "ARR_COLLAPSE");
                let inner = self.expect_arr(outer, "ARR_COLLAPSE")?;
                Some(SchemaType::array(inner))
            }
            Expr::ArrCross(a, b) => {
                let ta = self.child(0, a);
                let tb = self.child(1, b);
                let ea = self.expect_arr(ta, "ARR_CROSS")?;
                let eb = self.expect_arr(tb, "ARR_CROSS")?;
                Some(SchemaType::array(SchemaType::tuple([
                    ("fst", ea),
                    ("snd", eb),
                ])))
            }

            Expr::MakeRef(a, ty) => {
                if matches!(&**a, Expr::Deref(_)) {
                    self.lint(
                        "lint-ref-deref",
                        "REF(DEREF(…)) re-mints an object it just materialised — rule 28 \
                         cancels the round-trip (modulo object identity)"
                            .to_string(),
                    );
                }
                let ta = self.child(0, a);
                match self.reg.lookup(ty) {
                    Err(_) => {
                        self.error("unknown-type", format!("REF: unknown type `{ty}`"));
                    }
                    Ok(id) => {
                        // §3.1 (amended definition v′): the minted object's
                        // value must inhabit dom(ty), i.e. be compatible
                        // with the type's full body.
                        if let (Some(ta), Ok(body)) = (&ta, self.reg.full_body(id)) {
                            if self.join(ta, &body).is_none() {
                                self.error(
                                    "oid-domain",
                                    format!(
                                        "REF[{ty}]: a value of schema {ta} cannot inhabit \
                                         dom({ty}) = {body} (§3.1, amended definition v′)"
                                    ),
                                );
                            }
                        }
                    }
                }
                Some(SchemaType::reference(ty.clone()))
            }
            Expr::Deref(a) => {
                if matches!(&**a, Expr::MakeRef(..)) {
                    self.lint(
                        "lint-ref-deref",
                        "DEREF(REF(…)) materialises an object it just minted — rule 28a \
                         cancels the round-trip"
                            .to_string(),
                    );
                }
                let t = self.child(0, a);
                match self.resolve(t?)? {
                    SchemaType::Ref(n) => {
                        if self.reg.lookup(&n).is_err() {
                            self.error("unknown-type", format!("DEREF: unknown type `{n}`"));
                            None
                        } else {
                            Some(SchemaType::named(n))
                        }
                    }
                    other => {
                        self.error(
                            "sort-mismatch",
                            format!("DEREF: expected ref, found {other}"),
                        );
                        None
                    }
                }
            }

            Expr::Comp { input, pred } => {
                let t = self.child(0, input);
                self.env.push(t.clone());
                let mut idx = 1;
                self.check_pred(pred, &mut idx);
                self.env.pop();
                t
            }
            Expr::Select { input, pred } => {
                let t = self.child(0, input);
                let elem = self.expect_set(t.clone(), "σ");
                self.env.push(elem);
                let mut idx = 1;
                self.check_pred(pred, &mut idx);
                self.env.pop();
                t
            }
            Expr::ArrSelect { input, pred } => {
                let t = self.child(0, input);
                let elem = self.expect_arr(t.clone(), "arr_σ");
                self.env.push(elem);
                let mut idx = 1;
                self.check_pred(pred, &mut idx);
                self.env.pop();
                t
            }
            Expr::RelCross(a, b)
            | Expr::RelJoin {
                left: a, right: b, ..
            } => {
                let op = if matches!(e, Expr::RelCross(..)) {
                    "rel_×"
                } else {
                    "rel_join"
                };
                let ta = self.child(0, a);
                let tb = self.child(1, b);
                let ea = self.expect_set(ta, op);
                let eb = self.expect_set(tb, op);
                let fa = self.expect_tup(ea, op);
                let fb = self.expect_tup(eb, op);
                let joined = match (fa, fb) {
                    (Some(fa), Some(fb)) => Some(SchemaType::Tup(crate::infer::cat_fields(fa, fb))),
                    _ => None,
                };
                if let Expr::RelJoin { pred, .. } = e {
                    self.env.push(joined.clone());
                    let mut idx = 2;
                    self.check_pred(pred, &mut idx);
                    self.env.pop();
                }
                Some(SchemaType::set(joined?))
            }

            Expr::Call(f, args) => {
                let mut arg_tys = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    arg_tys.push(self.child(i, a));
                }
                self.check_call(*f, &arg_tys)
            }

            Expr::SetApplySwitch { input, table } => {
                let elem = {
                    let t = self.child(0, input);
                    self.expect_set(t, "SET_APPLY_SWITCH")
                };
                let elem_id = match &elem {
                    Some(SchemaType::Named(en)) => self.reg.lookup(en).ok(),
                    _ => None,
                };
                let mut first: Option<(String, SchemaType)> = None;
                for (i, (ty_name, body)) in table.iter().enumerate() {
                    let arm_elem = match self.reg.lookup(ty_name) {
                        Ok(tid) => {
                            if let Some(eid) = elem_id {
                                if !self.reg.is_subtype_or_self(tid, eid) {
                                    self.lint(
                                        "lint-dead-type-filter",
                                        format!(
                                            "switch arm `{ty_name}` can never match elements \
                                             of the input's type (§3.1 rules 3/4)"
                                        ),
                                    );
                                }
                            }
                            Some(SchemaType::named(ty_name.clone()))
                        }
                        Err(_) => {
                            self.error(
                                "unknown-type",
                                format!("SET_APPLY_SWITCH arm names unknown type `{ty_name}`"),
                            );
                            None
                        }
                    };
                    self.env.push(arm_elem);
                    let out = self.child(1 + i, body);
                    self.env.pop();
                    if let Some(out) = out {
                        match &first {
                            None => first = Some((ty_name.clone(), out)),
                            Some((fname, fout)) => {
                                // Section 4 asks for identical method
                                // signatures; this implementation runs
                                // heterogeneous arms (the element schema
                                // is taken from the first arm), so
                                // divergence is suspicious, not fatal.
                                if self.join(fout, &out).is_none() {
                                    let msg = format!(
                                        "SET_APPLY_SWITCH arms disagree: arm `{fname}` \
                                         yields {fout} but arm `{ty_name}` yields {out} \
                                         (Section 4 expects identical signatures)"
                                    );
                                    self.lint("lint-switch-arm-divergence", msg);
                                }
                            }
                        }
                    }
                }
                let out = first.map(|(_, t)| t).or(elem);
                Some(SchemaType::set(out?))
            }
        }
    }

    fn check_call(&mut self, f: Func, arg_tys: &[Option<SchemaType>]) -> Option<SchemaType> {
        let arity = |v: &mut Self, want: usize| {
            if arg_tys.len() != want {
                v.error(
                    "arity",
                    format!("{f} takes {want} argument(s), got {}", arg_tys.len()),
                );
                false
            } else {
                true
            }
        };
        match f {
            Func::Add | Func::Sub | Func::Mul | Func::Div => {
                if !arity(self, 2) {
                    return None;
                }
                for t in arg_tys.iter().flatten() {
                    if let Some(r) = self.resolve(t.clone()) {
                        if !is_numeric(&r) && !is_unknown(&r) {
                            self.error(
                                "sort-mismatch",
                                format!("{f}: expected a numeric operand, found {r}"),
                            );
                        }
                    }
                }
                Some(crate::infer::numeric_join(
                    arg_tys[0].as_ref()?,
                    arg_tys[1].as_ref()?,
                ))
            }
            Func::Neg => {
                if !arity(self, 1) {
                    return None;
                }
                let r = self.resolve(arg_tys[0].clone()?)?;
                if !is_numeric(&r) && !is_unknown(&r) {
                    self.error(
                        "sort-mismatch",
                        format!("neg: expected a numeric operand, found {r}"),
                    );
                    return None;
                }
                Some(r)
            }
            Func::Age => {
                if !arity(self, 1) {
                    return None;
                }
                let r = self.resolve(arg_tys[0].clone()?)?;
                if r != SchemaType::date() && !is_unknown(&r) {
                    self.error("sort-mismatch", format!("age: expected a date, found {r}"));
                }
                Some(SchemaType::int4())
            }
            Func::Count => {
                if !arity(self, 1) {
                    return None;
                }
                match self.resolve(arg_tys[0].clone()?)? {
                    SchemaType::Set(_) | SchemaType::Arr { .. } => {}
                    other => self.error(
                        "sort-mismatch",
                        format!("count: expected a collection, found {other}"),
                    ),
                }
                Some(SchemaType::int4())
            }
            Func::Avg => {
                if !arity(self, 1) {
                    return None;
                }
                self.check_numeric_collection(arg_tys[0].clone(), "avg");
                Some(SchemaType::float4())
            }
            Func::Sum => {
                if !arity(self, 1) {
                    return None;
                }
                self.check_numeric_collection(arg_tys[0].clone(), "sum")
            }
            Func::Min | Func::Max => {
                if !arity(self, 1) {
                    return None;
                }
                match self.resolve(arg_tys[0].clone()?)? {
                    SchemaType::Set(e) => Some(*e),
                    SchemaType::Arr { elem, .. } => Some(*elem),
                    other => {
                        self.error(
                            "sort-mismatch",
                            format!("{f}: expected a collection, found {other}"),
                        );
                        None
                    }
                }
            }
            Func::The => {
                if !arity(self, 1) {
                    return None;
                }
                match self.resolve(arg_tys[0].clone()?)? {
                    SchemaType::Set(e) => Some(*e),
                    other => {
                        self.error(
                            "sort-mismatch",
                            format!("the: expected a multiset, found {other}"),
                        );
                        None
                    }
                }
            }
        }
    }

    fn check_numeric_collection(&mut self, t: Option<SchemaType>, op: &str) -> Option<SchemaType> {
        match self.resolve(t?)? {
            SchemaType::Set(e) | SchemaType::Arr { elem: e, .. } => {
                let r = self.resolve(*e)?;
                if !is_numeric(&r) && !is_unknown(&r) {
                    self.error(
                        "sort-mismatch",
                        format!("{op}: expected numeric elements, found {r}"),
                    );
                    None
                } else {
                    Some(r)
                }
            }
            other => {
                self.error(
                    "sort-mismatch",
                    format!("{op}: expected a collection, found {other}"),
                );
                None
            }
        }
    }

    fn check_pred(&mut self, p: &Pred, idx: &mut usize) {
        match p {
            Pred::Cmp(l, op, r) => {
                let il = *idx;
                *idx += 1;
                let tl = self.child(il, l);
                let ir = *idx;
                *idx += 1;
                let tr = self.child(ir, r);
                for side in [&**l, &**r] {
                    if let Expr::Const(Value::Null(n)) = side {
                        let lit = match n {
                            excess_types::Null::Dne => "dne",
                            excess_types::Null::Unk => "unk",
                        };
                        self.lint(
                            "lint-null-comparison",
                            format!(
                                "comparison against the `{lit}` literal can never be true \
                                 under three-valued logic (§3.3) — the predicate never \
                                 accepts"
                            ),
                        );
                    }
                }
                let (Some(tl), Some(tr)) = (tl, tr) else {
                    return;
                };
                let (rl, rr) = (resolve_deep(&tl, self.reg), resolve_deep(&tr, self.reg));
                if *op == CmpOp::In {
                    match rr {
                        SchemaType::Set(e) => {
                            if !self.comparable(&rl, &e) {
                                self.error(
                                    "predicate-type",
                                    format!(
                                        "`in`: element schema {tl} is incomparable with \
                                         multiset elements of schema {e}"
                                    ),
                                );
                            }
                            self.check_ref_comparison(&rl, &e);
                        }
                        other if is_unknown(&other) => {}
                        other => self.error(
                            "predicate-type",
                            format!("`in`: right-hand side must be a multiset, found {other}"),
                        ),
                    }
                } else {
                    if !self.comparable(&rl, &rr) {
                        self.error(
                            "predicate-type",
                            format!("`{op}`: cannot compare {tl} with {tr}"),
                        );
                    }
                    self.check_ref_comparison(&rl, &rr);
                }
            }
            Pred::And(a, b) => {
                self.check_pred(a, idx);
                self.check_pred(b, idx);
            }
            Pred::Not(q) => self.check_pred(q, idx),
        }
    }
}
