//! The evaluator: `Expr × environment → Value`.
//!
//! Evaluation is defined per operator exactly as in Section 3.2.  The
//! binder discipline: `SET_APPLY`, `ARR_APPLY`, and `GRP` bind `Input(0)`
//! to each occurrence/element in turn; `COMP` binds `Input(0)` to its whole
//! input inside the predicate ("this is different from its function in the
//! SET_APPLY and ARR_APPLY operators").
//!
//! ## Null flow
//!
//! Structural operators *propagate* nulls (e.g. `TUP_EXTRACT(dne) = dne`),
//! which is what makes fused bodies like Figure 10's
//! `π(COMP_{floor=5}(…))` correct: a failing COMP yields `dne`, the π
//! passes it through, and the enclosing SET_APPLY's multiset construction
//! discards it.  `SET(dne) = { }` and `ARR_APPLY` drops `dne` results for
//! the same reason (array selection is `ARR_APPLY ∘ COMP`).
//!
//! ## Cost accounting
//!
//! Evaluation is deliberately *per-occurrence*: a SET_APPLY over a multiset
//! with large cardinalities applies its body once per occurrence, not once
//! per distinct element.  This is what makes the paper's duplication-factor
//! arguments (Figures 6–8) measurable rather than hidden by memoisation.

use crate::catalog::Catalog;
use crate::counters::Counters;
use crate::error::{EvalError, EvalResult};
use crate::expr::{Expr, Func, Pred};
use crate::ops::predicate::Truth;
use crate::ops::{aggregate, array, predicate};
use crate::profile::{Profile, TraceSink};
use excess_types::{domain, Date, MultiSet, ObjectStore, SchemaType, TypeId, TypeRegistry, Value};

/// Everything evaluation needs besides the expression: the type registry,
/// the (mutable — REF mints) object store, the catalog of named objects,
/// the `today` used by the `age` virtual field, and the work counters.
pub struct EvalCtx<'a> {
    /// Named-type registry (inheritance hierarchy, full bodies).
    pub registry: &'a TypeRegistry,
    /// The object heap; mutable because `REF` creates objects.
    pub store: &'a mut ObjectStore,
    /// Named top-level objects.
    pub catalog: &'a dyn Catalog,
    /// The date `age` computes against (fixed for determinism; the paper's
    /// TR is dated December 1990).
    pub today: Date,
    /// Work counters (see [`Counters`]).
    pub counters: Counters,
    /// Opt-in per-operator profiler (see [`crate::profile`]).  `None` by
    /// default: the evaluator then pays one branch per node and nothing
    /// else.
    pub trace: Option<Box<TraceSink>>,
    /// Pointer-keyed hash-join kernel table, installed by
    /// [`crate::physical::evaluate_physical`]: maps the address of a
    /// `rel_join` node to its `(left_key, right_key)` choice.  `None`
    /// (the default) means every join runs as a nested loop.
    pub(crate) join_kernels: Option<std::collections::HashMap<usize, (String, String, bool)>>,
    /// Pointer-keyed batched-kernel table, installed alongside
    /// `join_kernels`: maps node addresses to columnar
    /// [`ChunkKernel`](crate::columnar::ChunkKernel)s that consume the
    /// catalog's extent chunks instead of cloned row values.  `None`
    /// (the default) means every operator runs row-at-a-time.
    pub(crate) chunk_kernels:
        Option<std::collections::HashMap<usize, crate::columnar::ChunkKernel>>,
}

impl<'a> EvalCtx<'a> {
    /// Standard context with the default `today`.
    pub fn new(
        registry: &'a TypeRegistry,
        store: &'a mut ObjectStore,
        catalog: &'a dyn Catalog,
    ) -> Self {
        EvalCtx {
            registry,
            store,
            catalog,
            today: Date::new(1990, 12, 1).expect("valid date"),
            counters: Counters::new(),
            trace: None,
            join_kernels: None,
            chunk_kernels: None,
        }
    }

    /// Turn on per-operator profiling for subsequent evaluations.  A fresh
    /// [`TraceSink`] replaces any previous recording.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Box::new(TraceSink::new()));
    }

    /// Like [`EvalCtx::enable_tracing`] but with coarse timestamps: the
    /// profiler samples the clock once per traced node invocation instead
    /// of twice, shrinking the observer effect on deep plans at the price
    /// of blurring the wall-time split between a parent's self time and
    /// its next child (counters stay exact; see
    /// [`TraceSink::is_coarse`]).
    pub fn enable_coarse_tracing(&mut self) {
        self.trace = Some(Box::new(TraceSink::new_coarse()));
    }

    /// Stop tracing and return the recorded [`Profile`], or `None` when
    /// tracing was never enabled.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.trace.take().map(|sink| sink.finish())
    }
}

/// Evaluate a closed expression (no free `INPUT`s).
pub fn evaluate(e: &Expr, ctx: &mut EvalCtx) -> EvalResult<Value> {
    let mut env = Vec::new();
    eval(e, &mut env, ctx)
}

/// Determine the *exact* (most specific) type of a runtime value, for the
/// Section 4 dispatch mechanisms.
///
/// * references dereference to the store's recorded exact type;
/// * tuples are shape-matched: among all named tuple types whose full body
///   the value inhabits *exactly*, the most specific (deepest) one wins.
///
/// Returns `None` when no named type matches.
pub fn exact_type_of(v: &Value, ctx: &EvalCtx) -> Option<TypeId> {
    exact_type_of_parts(v, ctx.registry, ctx.store)
}

/// [`exact_type_of`] without an evaluation context — usable anywhere a
/// registry and store are at hand (e.g. extent-index maintenance).
pub fn exact_type_of_parts(
    v: &Value,
    registry: &TypeRegistry,
    store: &ObjectStore,
) -> Option<TypeId> {
    if let Value::Ref(oid) = v {
        return store.exact_type(*oid).ok();
    }
    let mut best: Option<TypeId> = None;
    let mut best_depth = 0usize;
    for ty in registry.all_ids() {
        let Ok(body) = registry.full_body(ty) else {
            continue;
        };
        if !matches!(body, SchemaType::Tup(_)) {
            continue;
        }
        if domain::check_dom_exact(v, &body, registry).is_ok() {
            let depth = registry.ancestors(ty).len();
            if best.is_none() || depth > best_depth {
                best = Some(ty);
                best_depth = depth;
            }
        }
    }
    best
}

fn sort_err(op: &'static str, expected: &'static str, v: &Value) -> EvalError {
    EvalError::SortMismatch {
        op,
        expected,
        found: v.kind_name().to_string(),
    }
}

fn as_set(op: &'static str, v: Value) -> EvalResult<MultiSet> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(sort_err(op, "multiset", &other)),
    }
}

fn as_array(op: &'static str, v: Value) -> EvalResult<Vec<Value>> {
    match v {
        Value::Array(a) => Ok(a),
        other => Err(sort_err(op, "array", &other)),
    }
}

/// Evaluate with an explicit binder environment (innermost last).
///
/// When profiling is enabled (see [`EvalCtx::enable_tracing`]) every call
/// is bracketed by a [`TraceSink`] frame; otherwise this is a single
/// branch in front of the operator dispatch.
pub fn eval(e: &Expr, env: &mut Vec<Value>, ctx: &mut EvalCtx) -> EvalResult<Value> {
    if ctx.trace.is_none() {
        return eval_inner(e, env, ctx);
    }
    let token = ctx
        .trace
        .as_mut()
        .expect("checked above")
        .enter(e, ctx.counters);
    let result = eval_inner(e, env, ctx);
    // The sink can only disappear mid-evaluation if the traced expression
    // itself takes the profile, which nothing does; guard anyway.
    if let Some(sink) = ctx.trace.as_mut() {
        sink.exit(token, e, &result, ctx.counters);
    }
    result
}

/// The operator dispatch behind [`eval`].
fn eval_inner(e: &Expr, env: &mut Vec<Value>, ctx: &mut EvalCtx) -> EvalResult<Value> {
    match e {
        // ----- leaves -----
        Expr::Input(d) => {
            let idx = env
                .len()
                .checked_sub(1 + *d)
                .ok_or(EvalError::UnboundInput(*d))?;
            Ok(env[idx].clone())
        }
        Expr::Named(n) => {
            ctx.counters.named_object_scans += 1;
            ctx.catalog
                .get_object(n)
                .cloned()
                .ok_or_else(|| EvalError::UnknownObject(n.clone()))
        }
        Expr::Const(v) => Ok(v.clone()),

        // ----- multiset operators -----
        Expr::AddUnion(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            Ok(Value::Set(as_set("⊎", a)?.additive_union(as_set("⊎", b)?)))
        }
        Expr::MakeSet(a) => {
            let v = eval(a, env, ctx)?;
            // SET(dne) = {} via the multiset's dne-discard on insertion.
            Ok(Value::Set(MultiSet::from_occurrences([v])))
        }
        Expr::SetApply {
            input,
            body,
            only_types,
        } => {
            let inv = eval(input, env, ctx)?;
            if inv.is_null() {
                return Ok(inv);
            }
            let set = as_set("SET_APPLY", inv)?;
            let filter: Option<Vec<TypeId>> = match only_types {
                Some(names) => Some(
                    names
                        .iter()
                        .map(|n| ctx.registry.lookup(n))
                        .collect::<Result<_, _>>()?,
                ),
                None => None,
            };
            let mut out = MultiSet::new();
            for occ in set.iter_occurrences() {
                ctx.counters.occurrences_scanned += 1;
                if let Some(want) = &filter {
                    // "only objects that are exactly of type T are to be
                    // processed"; others are ignored.
                    let exact = exact_type_of(occ, ctx);
                    if !matches!(exact, Some(t) if want.contains(&t)) {
                        continue;
                    }
                }
                env.push(occ.clone());
                let r = eval(body, env, ctx);
                env.pop();
                out.insert(r?);
            }
            Ok(Value::Set(out))
        }
        Expr::Group { input, by } => {
            if let Some(out) = crate::columnar::try_group(e, input, by, ctx) {
                return Ok(out);
            }
            let inv = eval(input, env, ctx)?;
            if inv.is_null() {
                return Ok(inv);
            }
            let set = as_set("GRP", inv)?;
            let mut groups: std::collections::BTreeMap<Value, MultiSet> = Default::default();
            for occ in set.iter_occurrences() {
                ctx.counters.occurrences_scanned += 1;
                env.push(occ.clone());
                let key = eval(by, env, ctx);
                env.pop();
                let key = key?;
                if key.is_dne() {
                    continue; // an occurrence with no grouping key is dropped
                }
                groups.entry(key).or_default().insert(occ.clone());
            }
            Ok(Value::Set(groups.into_values().map(Value::Set).collect()))
        }
        Expr::DupElim(a) => {
            if let Some(out) = crate::columnar::try_distinct(e, a, ctx) {
                return Ok(out);
            }
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            let s = as_set("DE", v)?;
            ctx.counters.de_input_occurrences += s.len();
            Ok(Value::Set(s.dup_elim()))
        }
        Expr::Diff(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            Ok(Value::Set(as_set("−", a)?.difference(&as_set("−", b)?)))
        }
        Expr::Cross(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            let out = as_set("×", a)?.cross(&as_set("×", b)?);
            ctx.counters.pairs_formed += out.len();
            Ok(Value::Set(out))
        }
        Expr::SetCollapse(a) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            let s = as_set("SET_COLLAPSE", v)?;
            s.collapse().map(Value::Set).ok_or_else(|| {
                sort_err(
                    "SET_COLLAPSE",
                    "multiset of multisets",
                    &Value::Set(s.clone()),
                )
            })
        }

        // ----- tuple operators -----
        Expr::Project(a, fields) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            match v {
                Value::Tuple(t) => Ok(Value::Tuple(t.project(fields)?)),
                other => Err(sort_err("π", "tuple", &other)),
            }
        }
        Expr::TupCat(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            match (&a, &b) {
                (Value::Tuple(x), Value::Tuple(y)) => Ok(Value::Tuple(x.cat(y))),
                (Value::Tuple(_), other) | (other, _) => Err(sort_err("TUP_CAT", "tuple", other)),
            }
        }
        Expr::TupExtract(a, field) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            match v {
                Value::Tuple(t) => Ok(t.extract(field)?.clone()),
                other => Err(sort_err("TUP_EXTRACT", "tuple", &other)),
            }
        }
        Expr::MakeTup(a, field) => {
            let v = eval(a, env, ctx)?;
            Ok(Value::tuple([(field.as_str(), v)]))
        }

        // ----- array operators -----
        Expr::MakeArr(a) => {
            let v = eval(a, env, ctx)?;
            if v.is_dne() {
                return Ok(Value::array([])); // mirror SET(dne) = { }
            }
            Ok(Value::array([v]))
        }
        Expr::ArrExtract(a, b) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            Ok(array::extract(&as_array("ARR_EXTRACT", v)?, *b))
        }
        Expr::ArrApply { input, body } => {
            let inv = eval(input, env, ctx)?;
            if inv.is_null() {
                return Ok(inv);
            }
            let arr = as_array("ARR_APPLY", inv)?;
            let mut out = Vec::with_capacity(arr.len());
            for elem in arr {
                ctx.counters.elements_scanned += 1;
                env.push(elem);
                let r = eval(body, env, ctx);
                env.pop();
                let r = r?;
                if !r.is_dne() {
                    out.push(r); // dne results dropped: array σ = ARR_APPLY∘COMP
                }
            }
            Ok(Value::Array(out))
        }
        Expr::SubArr(a, m, n) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            Ok(Value::Array(array::subarr(&as_array("SUBARR", v)?, *m, *n)))
        }
        Expr::ArrCat(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            Ok(Value::Array(array::cat(
                &as_array("ARR_CAT", a)?,
                &as_array("ARR_CAT", b)?,
            )))
        }
        Expr::ArrCollapse(a) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            let arr = as_array("ARR_COLLAPSE", v)?;
            array::collapse(&arr).map(Value::Array).ok_or_else(|| {
                sort_err(
                    "ARR_COLLAPSE",
                    "array of arrays",
                    &Value::Array(arr.clone()),
                )
            })
        }
        Expr::ArrDiff(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            Ok(Value::Array(array::diff(
                &as_array("ARR_DIFF", a)?,
                &as_array("ARR_DIFF", b)?,
            )))
        }
        Expr::ArrDupElim(a) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            Ok(Value::Array(array::dup_elim(&as_array("ARR_DE", v)?)))
        }
        Expr::ArrCross(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            let out = array::cross(&as_array("ARR_CROSS", a)?, &as_array("ARR_CROSS", b)?);
            ctx.counters.pairs_formed += out.len() as u64;
            Ok(Value::Array(out))
        }

        // ----- reference operators -----
        Expr::MakeRef(a, ty_name) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            let ty = ctx.registry.lookup(ty_name)?;
            let oid = ctx.store.create(ctx.registry, ty, v)?;
            ctx.counters.oids_minted += 1;
            Ok(Value::Ref(oid))
        }
        Expr::Deref(a) => {
            let v = eval(a, env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            match v {
                Value::Ref(oid) => {
                    ctx.counters.derefs += 1;
                    Ok(ctx.store.deref(oid)?.clone())
                }
                other => Err(sort_err("DEREF", "ref", &other)),
            }
        }

        // ----- predicates -----
        Expr::Comp { input, pred } => {
            let v = eval(input, env, ctx)?;
            env.push(v);
            let t = eval_pred(pred, env, ctx);
            let v = env.pop().expect("pushed above");
            Ok(predicate::comp_result(t?, v))
        }

        // ----- functions / aggregates -----
        Expr::Call(f, args) => eval_call(*f, args, env, ctx),

        // ----- derived operators (direct implementations; semantics match
        //       their expansions — asserted by property tests) -----
        Expr::Union(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            Ok(Value::Set(as_set("∪", a)?.union_max(&as_set("∪", b)?)))
        }
        Expr::Intersect(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            Ok(Value::Set(as_set("∩", a)?.intersect_min(&as_set("∩", b)?)))
        }
        Expr::Select { input, pred } => {
            if let Some(out) = crate::columnar::try_select(e, input, pred, ctx) {
                return Ok(out);
            }
            let inv = eval(input, env, ctx)?;
            if inv.is_null() {
                return Ok(inv);
            }
            let set = as_set("σ", inv)?;
            let mut out = MultiSet::new();
            for occ in set.iter_occurrences() {
                ctx.counters.occurrences_scanned += 1;
                env.push(occ.clone());
                let t = eval_pred(pred, env, ctx);
                env.pop();
                match t? {
                    Truth::T => out.insert(occ.clone()),
                    Truth::U => out.insert(Value::unk()),
                    Truth::F => {}
                }
            }
            Ok(Value::Set(out))
        }
        Expr::ArrSelect { input, pred } => {
            let inv = eval(input, env, ctx)?;
            if inv.is_null() {
                return Ok(inv);
            }
            let arr = as_array("arr_σ", inv)?;
            let mut out = Vec::new();
            for elem in arr {
                ctx.counters.elements_scanned += 1;
                env.push(elem.clone());
                let t = eval_pred(pred, env, ctx);
                env.pop();
                match t? {
                    Truth::T => out.push(elem),
                    Truth::U => out.push(Value::unk()),
                    Truth::F => {}
                }
            }
            Ok(Value::Array(out))
        }
        Expr::RelCross(a, b) => {
            let (a, b) = (eval(a, env, ctx)?, eval(b, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            let (sa, sb) = (as_set("rel_×", a)?, as_set("rel_×", b)?);
            let mut out = MultiSet::new();
            for (x, cx) in sa.iter_counted() {
                let tx = x.as_tuple().ok_or_else(|| sort_err("rel_×", "tuple", x))?;
                for (y, cy) in sb.iter_counted() {
                    let ty = y.as_tuple().ok_or_else(|| sort_err("rel_×", "tuple", y))?;
                    ctx.counters.pairs_formed += cx * cy;
                    ctx.counters.occurrences_scanned += cx * cy;
                    out.insert_n(Value::Tuple(tx.cat(ty)), cx * cy);
                }
            }
            Ok(Value::Set(out))
        }
        Expr::RelJoin { left, right, pred } => {
            if let Some(out) = crate::columnar::try_join(e, left, right, pred, ctx) {
                return Ok(out);
            }
            let (a, b) = (eval(left, env, ctx)?, eval(right, env, ctx)?);
            if a.is_null() {
                return Ok(a);
            }
            if b.is_null() {
                return Ok(b);
            }
            let (sa, sb) = (as_set("rel_join", a)?, as_set("rel_join", b)?);
            // A lowered plan may have assigned this node (by address) a
            // hash kernel; its runtime guard re-verifies the key side
            // conditions and reports `None` to fall back to the nested
            // loop, so canon-identity never rests on the statistics.
            let keys = ctx
                .join_kernels
                .as_ref()
                .and_then(|t| t.get(&(e as *const Expr as usize)))
                .cloned();
            if let Some((lf, rf, guard_elided)) = keys {
                // An elided guard means the property analysis proved the
                // key side conditions; the unguarded kernel still
                // degrades gracefully if the proof were ever wrong.
                let kernel_out = if guard_elided {
                    crate::physical::hash_equi_join_unguarded(&sa, &sb, &lf, &rf, pred, env, ctx)?
                } else {
                    crate::physical::hash_equi_join(&sa, &sb, &lf, &rf, pred, env, ctx)?
                };
                if let Some(out) = kernel_out {
                    return Ok(Value::Set(out));
                }
            }
            let mut out = MultiSet::new();
            for (x, cx) in sa.iter_counted() {
                let tx = x
                    .as_tuple()
                    .ok_or_else(|| sort_err("rel_join", "tuple", x))?;
                for (y, cy) in sb.iter_counted() {
                    let ty = y
                        .as_tuple()
                        .ok_or_else(|| sort_err("rel_join", "tuple", y))?;
                    ctx.counters.occurrences_scanned += cx * cy;
                    let joined = Value::Tuple(tx.cat(ty));
                    env.push(joined.clone());
                    let t = eval_pred(pred, env, ctx);
                    env.pop();
                    match t? {
                        Truth::T => out.insert_n(joined, cx * cy),
                        Truth::U => out.insert_n(Value::unk(), cx * cy),
                        Truth::F => {}
                    }
                }
            }
            Ok(Value::Set(out))
        }

        // ----- Section 4 dispatch -----
        Expr::SetApplySwitch { input, table } => {
            let inv = eval(input, env, ctx)?;
            if inv.is_null() {
                return Ok(inv);
            }
            let set = as_set("SET_APPLY_SWITCH", inv)?;
            // Pre-resolve arm type ids once per evaluation.
            let mut arms: Vec<(TypeId, &Expr)> = Vec::with_capacity(table.len());
            for (name, body) in table {
                arms.push((ctx.registry.lookup(name)?, body));
            }
            let mut out = MultiSet::new();
            for occ in set.iter_occurrences() {
                ctx.counters.occurrences_scanned += 1;
                let exact = exact_type_of(occ, ctx).ok_or_else(|| EvalError::NoDispatchArm {
                    ty: format!("<untyped value {occ}>"),
                })?;
                // Exact arm, else the nearest (most specific) ancestor arm —
                // inherited method semantics.
                let arm = arms
                    .iter()
                    .filter(|(t, _)| ctx.registry.is_subtype_or_self(exact, *t))
                    .max_by_key(|(t, _)| ctx.registry.ancestors(*t).len())
                    .map(|(_, b)| *b)
                    .ok_or_else(|| EvalError::NoDispatchArm {
                        ty: ctx.registry.name_of(exact).to_string(),
                    })?;
                env.push(occ.clone());
                let r = eval(arm, env, ctx);
                env.pop();
                out.insert(r?);
            }
            Ok(Value::Set(out))
        }
    }
}

/// Evaluate a predicate in the given environment (the COMP input or the
/// σ/join element is the innermost binding).
pub fn eval_pred(p: &Pred, env: &mut Vec<Value>, ctx: &mut EvalCtx) -> EvalResult<Truth> {
    match p {
        Pred::Cmp(l, op, r) => {
            let lv = eval(l, env, ctx)?;
            let rv = eval(r, env, ctx)?;
            ctx.counters.comparisons += 1;
            predicate::compare(&lv, *op, &rv).ok_or_else(|| EvalError::SortMismatch {
                op: "in",
                expected: "multiset right operand",
                found: rv.kind_name().to_string(),
            })
        }
        Pred::And(a, b) => {
            // Short-circuit: F ∧ x = F without evaluating x.
            let ta = eval_pred(a, env, ctx)?;
            if ta == Truth::F {
                return Ok(Truth::F);
            }
            Ok(ta.and(eval_pred(b, env, ctx)?))
        }
        Pred::Not(q) => Ok(eval_pred(q, env, ctx)?.not()),
    }
}

fn eval_call(f: Func, args: &[Expr], env: &mut Vec<Value>, ctx: &mut EvalCtx) -> EvalResult<Value> {
    let expect = |n: usize| -> EvalResult<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::Arity {
                func: "call",
                expected: n,
                found: args.len(),
            })
        }
    };
    use aggregate::NumOp;
    match f {
        Func::Add | Func::Sub | Func::Mul | Func::Div => {
            expect(2)?;
            let a = eval(&args[0], env, ctx)?;
            let b = eval(&args[1], env, ctx)?;
            let op = match f {
                Func::Add => NumOp::Add,
                Func::Sub => NumOp::Sub,
                Func::Mul => NumOp::Mul,
                _ => NumOp::Div,
            };
            aggregate::numeric(op, &a, &b)
        }
        Func::Neg => {
            expect(1)?;
            aggregate::negate(&eval(&args[0], env, ctx)?)
        }
        Func::Min | Func::Max | Func::Count | Func::Sum | Func::Avg => {
            expect(1)?;
            let v = eval(&args[0], env, ctx)?;
            match f {
                Func::Min => aggregate::min(&v),
                Func::Max => aggregate::max(&v),
                Func::Count => aggregate::count(&v),
                Func::Sum => aggregate::sum(&v),
                _ => aggregate::avg(&v),
            }
        }
        Func::The => {
            expect(1)?;
            let v = eval(&args[0], env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            match v {
                Value::Set(s) => Ok(s
                    .iter_occurrences()
                    .next()
                    .cloned()
                    .unwrap_or_else(Value::dne)),
                other => Err(sort_err("the", "multiset", &other)),
            }
        }
        Func::Age => {
            expect(1)?;
            let v = eval(&args[0], env, ctx)?;
            if v.is_null() {
                return Ok(v);
            }
            match v {
                Value::Scalar(excess_types::Scalar::Date(d)) => Ok(Value::int(d.age_at(ctx.today))),
                other => Err(sort_err("age", "Date", &other)),
            }
        }
    }
}
