//! Execution counters: the observable cost metrics behind the paper's
//! optimization claims.
//!
//! The transformation examples in Section 5 argue in terms of *work
//! avoided*: Figure 8 "results in DE operating on |S| + |E| occurrences
//! rather than |S| · |E| occurrences"; Figure 11 means "the dept attribute
//! needs to be DEREF'd only once".  These counters make those quantities
//! measurable so the `F6`–`F11` benchmarks can verify the claims exactly,
//! not just via wall-clock time.

/// Work counters accumulated during evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Occurrences iterated by SET_APPLY / GRP / derived σ and joins
    /// (one per element application: "scan work").
    pub occurrences_scanned: u64,
    /// Array elements iterated by ARR_APPLY and friends.
    pub elements_scanned: u64,
    /// DEREF operations performed.
    pub derefs: u64,
    /// Occurrences fed into DE nodes (Figure 8's headline metric).
    pub de_input_occurrences: u64,
    /// Atomic predicate comparisons evaluated.
    pub comparisons: u64,
    /// OIDs minted by REF.
    pub oids_minted: u64,
    /// Full scans of a named top-level object (Section 4's "scanning P
    /// three times" metric).
    pub named_object_scans: u64,
    /// Cardinality-weighted tuples produced by × / rel_× / rel_join inputs.
    pub pairs_formed: u64,
}

/// Apply `op` to every pair of corresponding fields.
macro_rules! zip_fields {
    ($a:expr, $b:expr, $op:expr) => {
        Counters {
            occurrences_scanned: $op($a.occurrences_scanned, $b.occurrences_scanned),
            elements_scanned: $op($a.elements_scanned, $b.elements_scanned),
            derefs: $op($a.derefs, $b.derefs),
            de_input_occurrences: $op($a.de_input_occurrences, $b.de_input_occurrences),
            comparisons: $op($a.comparisons, $b.comparisons),
            oids_minted: $op($a.oids_minted, $b.oids_minted),
            named_object_scans: $op($a.named_object_scans, $b.named_object_scans),
            pairs_formed: $op($a.pairs_formed, $b.pairs_formed),
        }
    };
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Work performed between two snapshots: `after.diff(before)`.
    ///
    /// Counters only ever grow during evaluation, so the saturating
    /// subtraction never actually clamps for (after, before) pairs taken
    /// from the same run; clamping guards against swapped arguments.
    pub fn diff(&self, before: &Counters) -> Counters {
        zip_fields!(self, before, u64::saturating_sub)
    }

    /// Every counter with its field name, in declaration order — the one
    /// place the field list is enumerated, so serializers and telemetry
    /// attributes cannot drift from the struct.
    pub fn named_fields(&self) -> [(&'static str, u64); 8] {
        [
            ("occurrences_scanned", self.occurrences_scanned),
            ("elements_scanned", self.elements_scanned),
            ("derefs", self.derefs),
            ("de_input_occurrences", self.de_input_occurrences),
            ("comparisons", self.comparisons),
            ("oids_minted", self.oids_minted),
            ("named_object_scans", self.named_object_scans),
            ("pairs_formed", self.pairs_formed),
        ]
    }

    /// Total of all individual counters — a crude "total work" scalar
    /// useful for cheap is-anything-happening checks.
    pub fn total(&self) -> u64 {
        self.occurrences_scanned
            + self.elements_scanned
            + self.derefs
            + self.de_input_occurrences
            + self.comparisons
            + self.oids_minted
            + self.named_object_scans
            + self.pairs_formed
    }
}

impl std::ops::Sub for Counters {
    type Output = Counters;

    fn sub(self, rhs: Counters) -> Counters {
        self.diff(&rhs)
    }
}

impl std::ops::Add for Counters {
    type Output = Counters;

    fn add(self, rhs: Counters) -> Counters {
        zip_fields!(self, rhs, u64::wrapping_add)
    }
}

impl std::ops::AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scans={} arr={} derefs={} de_in={} cmps={} mints={} obj_scans={} pairs={}",
            self.occurrences_scanned,
            self.elements_scanned,
            self.derefs,
            self.de_input_occurrences,
            self.comparisons,
            self.oids_minted,
            self.named_object_scans,
            self.pairs_formed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Counters::new();
        c.derefs = 3;
        c.occurrences_scanned = 9;
        c.reset();
        assert_eq!(c, Counters::new());
    }

    fn sample(step: u64) -> Counters {
        Counters {
            occurrences_scanned: step,
            elements_scanned: 2 * step,
            derefs: 3 * step,
            de_input_occurrences: 4 * step,
            comparisons: 5 * step,
            oids_minted: 6 * step,
            named_object_scans: 7 * step,
            pairs_formed: 8 * step,
        }
    }

    #[test]
    fn diff_subtracts_every_field() {
        assert_eq!(sample(5).diff(&sample(2)), sample(3));
        assert_eq!(sample(5) - sample(2), sample(3));
    }

    #[test]
    fn diff_saturates_on_swapped_snapshots() {
        assert_eq!(sample(2) - sample(5), Counters::new());
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = sample(1);
        acc += sample(2);
        assert_eq!(acc, sample(3));
        acc += Counters::new();
        assert_eq!(acc, sample(3));
    }

    #[test]
    fn diff_then_add_round_trips() {
        let before = sample(4);
        let after = sample(9);
        assert_eq!(before + (after - before), after);
    }

    #[test]
    fn total_sums_all_fields() {
        assert_eq!(Counters::new().total(), 0);
        assert_eq!(sample(1).total(), 36);
    }

    #[test]
    fn named_fields_cover_every_counter() {
        let c = sample(1);
        let sum: u64 = c.named_fields().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, c.total(), "a field is missing from named_fields");
        assert_eq!(c.named_fields()[2], ("derefs", 3));
    }

    #[test]
    fn display_lists_all_fields() {
        let c = Counters {
            derefs: 2,
            ..Counters::new()
        };
        let s = c.to_string();
        assert!(s.contains("derefs=2"), "{s}");
        assert!(s.contains("scans=0"), "{s}");
    }
}
