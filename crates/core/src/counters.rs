//! Execution counters: the observable cost metrics behind the paper's
//! optimization claims.
//!
//! The transformation examples in Section 5 argue in terms of *work
//! avoided*: Figure 8 "results in DE operating on |S| + |E| occurrences
//! rather than |S| · |E| occurrences"; Figure 11 means "the dept attribute
//! needs to be DEREF'd only once".  These counters make those quantities
//! measurable so the `F6`–`F11` benchmarks can verify the claims exactly,
//! not just via wall-clock time.

/// Work counters accumulated during evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Occurrences iterated by SET_APPLY / GRP / derived σ and joins
    /// (one per element application: "scan work").
    pub occurrences_scanned: u64,
    /// Array elements iterated by ARR_APPLY and friends.
    pub elements_scanned: u64,
    /// DEREF operations performed.
    pub derefs: u64,
    /// Occurrences fed into DE nodes (Figure 8's headline metric).
    pub de_input_occurrences: u64,
    /// Atomic predicate comparisons evaluated.
    pub comparisons: u64,
    /// OIDs minted by REF.
    pub oids_minted: u64,
    /// Full scans of a named top-level object (Section 4's "scanning P
    /// three times" metric).
    pub named_object_scans: u64,
    /// Cardinality-weighted tuples produced by × / rel_× / rel_join inputs.
    pub pairs_formed: u64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scans={} arr={} derefs={} de_in={} cmps={} mints={} obj_scans={} pairs={}",
            self.occurrences_scanned,
            self.elements_scanned,
            self.derefs,
            self.de_input_occurrences,
            self.comparisons,
            self.oids_minted,
            self.named_object_scans,
            self.pairs_formed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Counters::new();
        c.derefs = 3;
        c.occurrences_scanned = 9;
        c.reset();
        assert_eq!(c, Counters::new());
    }

    #[test]
    fn display_lists_all_fields() {
        let c = Counters { derefs: 2, ..Counters::new() };
        let s = c.to_string();
        assert!(s.contains("derefs=2"), "{s}");
        assert!(s.contains("scans=0"), "{s}");
    }
}
