//! Plan property analysis: abstract interpretation over the algebra.
//!
//! A bottom-up dataflow pass derives, per node path, a [`Props`] record —
//! cardinality bounds, duplicate-freeness, candidate keys and functional
//! dependencies, and per-attribute presence / `dne` / `unk` nullability on
//! a three-point *never / possible / always* lattice ([`Fact`]).  The
//! optimizer (PR 3) and the lowering layer (PR 5) only *estimate*; this
//! pass *proves*, which licenses rewrites (drop a DE over a
//! duplicate-free input), lints (redundant DISTINCT, always-empty
//! branches), and runtime-guard elision (a hash join key proven
//! non-null on every row needs no [`crate::physical::key_pair_usable`]
//! scan).
//!
//! # The claims and their fine print
//!
//! For a **closed** expression `E` (no free `INPUT`) analysed against a
//! [`Catalog`], the derived `Props` describe the value `E` evaluates to
//! *under that same catalog state*, **conditional on successful
//! evaluation**.  Two tiers of claim:
//!
//! * `coll = Some(kind)` is **unconditional on sort**: the value *is* a
//!   multiset (resp. array), not a null and not a scalar.  Emptiness
//!   (`card_hi == Some(0)`) and the rewrites it licenses require this
//!   tier — `A ⊎ B → B` is only sound when `A` provably *is* the empty
//!   multiset, since `⊎` propagates a null `A`.
//! * every other field is **conditional on the value being a
//!   collection**: if `E` evaluates to a multiset/array then its
//!   occurrences satisfy the claim.  This matches how the facts are
//!   consumed: the hash-join kernel, for example, only runs after
//!   `as_set` has already established the operand's sort.
//!
//! Attribute facts ([`AttrProps`]) are scoped to *tuple occurrences*:
//! `present = Always` means every tuple occurrence has the field;
//! `dne = Never` means no tuple occurrence holds the `dne` null there.
//! `tuple_only` upgrades the scope to *all* occurrences (multisets drop
//! `dne` elements at insertion, so the only non-tuple occurrences a
//! "set of tuples" can pick up are `unk`s minted by three-valued
//! predicates).  Keys are claimed only together with `tuple_only` and
//! `dup_free`; a key `K` asserts that occurrences are pairwise distinct
//! on their `K`-projection.  Functional dependencies `X → y` assert
//! that tuple occurrences agreeing on `X` agree on `y`.
//!
//! # Soundness
//!
//! Every transfer function is journaled ([`AnalysisStep`]) and the
//! whole derivation is checked empirically by a proptest battery
//! (`tests/analysis_soundness.rs`) that executes random pipelines —
//! serial and at `EXCESS_THREADS=4` — and asserts each derived property
//! on the actual canon result.  When no data is available
//! ([`crate::catalog::EmptyCatalog`]) named leaves get
//! [`Props::unknown`] and the pass
//! degrades to purely structural reasoning, which is how the plan
//! verifier uses it.
//!
//! # Example
//!
//! Even data-free, structure alone proves facts: a `DE` output is
//! duplicate-free whatever the extent holds, while the bare leaf proves
//! nothing.
//!
//! ```
//! use excess_core::analysis::analyze;
//! use excess_core::catalog::EmptyCatalog;
//! use excess_core::expr::Expr;
//!
//! let plan = Expr::named("S").dup_elim();
//! let a = analyze(&plan, &EmptyCatalog);
//! assert!(a.props_at(&[]).unwrap().dup_free);   // the DE node
//! assert!(!a.props_at(&[0]).unwrap().dup_free); // the unknown leaf
//! ```

use crate::catalog::Catalog;
use crate::expr::{Bound, CmpOp, Expr, Pred};
use crate::profile::NodePath;
use crate::render::op_label;
use excess_types::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Three-point lattice for "does X occur?": proven never, unknown, or
/// proven on every occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fact {
    /// Proven not to occur.
    Never,
    /// No proof either way (the lattice top).
    Possible,
    /// Proven to occur on every occurrence in scope.
    Always,
}

impl Fact {
    /// Merge facts across a union of occurrence populations: a claim
    /// survives only when both sides make it.
    pub fn union(self, other: Fact) -> Fact {
        if self == other {
            self
        } else {
            Fact::Possible
        }
    }

    /// Merge facts when every occurrence satisfies *both* sides'
    /// constraints (intersection-like flows): keep the stronger claim.
    pub fn refine(self, other: Fact) -> Fact {
        match (self, other) {
            (Fact::Possible, f) | (f, _) => f,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fact::Never => "never",
            Fact::Possible => "possible",
            Fact::Always => "always",
        })
    }
}

/// Which collection sort a node is proven to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// A multiset.
    Set,
    /// An array.
    Array,
}

/// Per-attribute facts, scoped to tuple occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrProps {
    /// Does every tuple occurrence carry this field?
    pub present: Fact,
    /// Can the field hold the `dne` null?
    pub dne: Fact,
    /// Can the field hold the `unk` null?
    pub unk: Fact,
    /// Uniform [`Value::kind_name`] of the field's non-null values, when
    /// proven uniform.
    pub kind: Option<&'static str>,
}

impl AttrProps {
    /// No proof about anything.
    pub fn top() -> AttrProps {
        AttrProps {
            present: Fact::Possible,
            dne: Fact::Possible,
            unk: Fact::Possible,
            kind: None,
        }
    }

    /// Proven present on every tuple, never null, of one kind.
    pub fn definite(kind: &'static str) -> AttrProps {
        AttrProps {
            present: Fact::Always,
            dne: Fact::Never,
            unk: Fact::Never,
            kind: Some(kind),
        }
    }

    /// Is the field proven present and proven free of both nulls — the
    /// static counterpart of the hash-join guard's per-row checks?
    pub fn is_definite_key(&self) -> bool {
        self.present == Fact::Always && self.dne == Fact::Never && self.unk == Fact::Never
    }
}

/// One functional dependency: tuples agreeing on `lhs` agree on `rhs`.
pub type Fd = (BTreeSet<String>, String);

/// The derived property record for one plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Props {
    /// Proven collection sort (`None`: could be null/scalar/either sort).
    pub coll: Option<CollKind>,
    /// Lower bound on the occurrence count.
    pub card_lo: u64,
    /// Upper bound on the occurrence count (`None` = unbounded).
    pub card_hi: Option<u64>,
    /// No value occurs more than once.
    pub dup_free: bool,
    /// Every occurrence is a tuple (no `unk` elements).
    pub tuple_only: bool,
    /// Facts per attribute of tuple occurrences.
    pub attrs: BTreeMap<String, AttrProps>,
    /// `attrs` lists every field any tuple occurrence can carry.
    pub attrs_exhaustive: bool,
    /// Candidate keys; claimed only with `tuple_only ∧ dup_free`.
    pub keys: Vec<BTreeSet<String>>,
    /// Functional dependencies among attributes.
    pub fds: Vec<Fd>,
}

impl Props {
    /// The lattice top: no claims at all.
    pub fn unknown() -> Props {
        Props {
            coll: None,
            card_lo: 0,
            card_hi: None,
            dup_free: false,
            tuple_only: false,
            attrs: BTreeMap::new(),
            attrs_exhaustive: false,
            keys: Vec::new(),
            fds: Vec::new(),
        }
    }

    /// The provably empty collection of the given sort (all per-occurrence
    /// claims hold vacuously).
    pub fn empty(kind: CollKind) -> Props {
        Props {
            coll: Some(kind),
            card_lo: 0,
            card_hi: Some(0),
            dup_free: true,
            tuple_only: true,
            attrs: BTreeMap::new(),
            attrs_exhaustive: true,
            keys: vec![BTreeSet::new()],
            fds: Vec::new(),
        }
    }

    /// Proven empty (and proven to be a collection at all).
    pub fn is_empty_coll(&self) -> bool {
        self.coll.is_some() && self.card_hi == Some(0)
    }

    /// Proven to be a multiset.
    pub fn is_set(&self) -> bool {
        self.coll == Some(CollKind::Set)
    }

    /// Exact scan of a literal or stored value: the base facts of the
    /// analysis.  Collections are measured, not estimated.
    pub fn of_value(v: &Value) -> Props {
        match v {
            Value::Set(s) => {
                let occurrences: Vec<(&Value, u64)> = s.iter_counted().collect();
                Props::of_occurrences(
                    CollKind::Set,
                    s.len(),
                    occurrences.iter().all(|(_, c)| *c == 1),
                    occurrences.iter().map(|(v, _)| *v),
                )
            }
            Value::Array(a) => {
                let distinct: BTreeSet<&Value> = a.iter().collect();
                Props::of_occurrences(
                    CollKind::Array,
                    a.len() as u64,
                    distinct.len() == a.len(),
                    a.iter(),
                )
            }
            _ => Props::unknown(),
        }
    }

    fn of_occurrences<'v>(
        kind: CollKind,
        card: u64,
        dup_free: bool,
        occurrences: impl Iterator<Item = &'v Value> + Clone,
    ) -> Props {
        let mut tuple_only = true;
        let mut attrs: BTreeMap<String, AttrProps> = BTreeMap::new();
        let mut field_sets: BTreeSet<BTreeSet<&str>> = BTreeSet::new();
        let mut tuples = 0u64;
        for v in occurrences.clone() {
            let Value::Tuple(t) = v else {
                tuple_only = false;
                continue;
            };
            tuples += 1;
            field_sets.insert(t.field_names().collect());
            for (name, fv) in t.iter() {
                let ap = attrs
                    .entry(name.to_string())
                    .or_insert_with(|| AttrProps::definite(fv.kind_name()));
                match fv {
                    Value::Null(excess_types::Null::Dne) => ap.dne = Fact::Always,
                    Value::Null(excess_types::Null::Unk) => ap.unk = Fact::Always,
                    _ => {
                        if ap.kind != Some(fv.kind_name()) {
                            ap.kind = None;
                        }
                    }
                }
            }
        }
        // Downgrade presence/null facts that did not hold on every tuple.
        for (name, ap) in attrs.iter_mut() {
            let present_in_all = field_sets.iter().all(|fs| fs.contains(name.as_str()));
            if !present_in_all {
                ap.present = Fact::Possible;
            }
            // `Always` above meant "seen at least once"; keep `Always`
            // only when *every* present field value was that null, else
            // it is merely possible.  (We never need `Always` nulls; be
            // conservative and collapse any sighting to `Possible`.)
            if ap.dne == Fact::Always {
                ap.dne = Fact::Possible;
                ap.kind = None;
            }
            if ap.unk == Fact::Always {
                ap.unk = Fact::Possible;
                ap.kind = None;
            }
        }
        let mut keys: Vec<BTreeSet<String>> = Vec::new();
        if tuple_only && dup_free {
            // The full field set keys the collection when it is shared.
            if field_sets.len() <= 1 {
                keys.push(field_sets.iter().flatten().map(|s| s.to_string()).collect());
            }
            // Single-attribute keys, measured directly.
            for (name, ap) in &attrs {
                if ap.present != Fact::Always {
                    continue;
                }
                let mut seen: BTreeSet<&Value> = BTreeSet::new();
                let mut distinct = true;
                for v in occurrences.clone() {
                    if let Value::Tuple(t) = v {
                        match t.get(name) {
                            Some(fv) if seen.insert(fv) => {}
                            _ => {
                                distinct = false;
                                break;
                            }
                        }
                    }
                }
                if distinct && tuples > 0 {
                    let single: BTreeSet<String> = [name.clone()].into();
                    if !keys.contains(&single) {
                        keys.push(single);
                    }
                }
            }
        }
        Props {
            coll: Some(kind),
            card_lo: card,
            card_hi: Some(card),
            dup_free,
            tuple_only,
            attrs,
            attrs_exhaustive: true,
            keys,
            fds: Vec::new(),
        }
    }

    /// Attribute-set closure under the recorded FDs and keys: everything
    /// functionally determined by `start`.
    pub fn closure(&self, start: &BTreeSet<String>) -> BTreeSet<String> {
        let mut c = start.clone();
        loop {
            let mut grew = false;
            for (lhs, rhs) in &self.fds {
                if lhs.is_subset(&c) && c.insert(rhs.clone()) {
                    grew = true;
                }
            }
            if self.attrs_exhaustive && self.keys.iter().any(|k| k.is_subset(&c)) {
                for a in self.attrs.keys() {
                    if c.insert(a.clone()) {
                        grew = true;
                    }
                }
            }
            if !grew {
                return c;
            }
        }
    }

    /// Do `cols` functionally determine a candidate key (so a projection
    /// onto `cols` cannot collide distinct tuples)?
    pub fn superkey(&self, cols: &BTreeSet<String>) -> bool {
        let c = self.closure(cols);
        self.keys.iter().any(|k| k.is_subset(&c))
    }

    /// Attribute facts, defaulting to top for unknown fields.
    pub fn attr(&self, name: &str) -> AttrProps {
        self.attrs.get(name).cloned().unwrap_or_else(AttrProps::top)
    }

    /// One-line rendering for the REPL / journal.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.coll {
            Some(CollKind::Set) => parts.push("set".into()),
            Some(CollKind::Array) => parts.push("array".into()),
            None => parts.push("sort?".into()),
        }
        match self.card_hi {
            Some(hi) if hi == self.card_lo => parts.push(format!("card={hi}")),
            Some(hi) => parts.push(format!("card={}..{}", self.card_lo, hi)),
            None => parts.push(format!("card={}..∞", self.card_lo)),
        }
        if self.dup_free {
            parts.push("dup-free".into());
        }
        if self.tuple_only {
            parts.push("tuples".into());
        }
        if !self.keys.is_empty() {
            let keys: Vec<String> = self
                .keys
                .iter()
                .map(|k| {
                    let cols: Vec<&str> = k.iter().map(|s| s.as_str()).collect();
                    format!("{{{}}}", cols.join(","))
                })
                .collect();
            parts.push(format!("keys={}", keys.join("")));
        }
        if !self.fds.is_empty() {
            parts.push(format!("fds={}", self.fds.len()));
        }
        let definite: Vec<&str> = self
            .attrs
            .iter()
            .filter(|(_, ap)| ap.is_definite_key())
            .map(|(n, _)| n.as_str())
            .collect();
        if !definite.is_empty() {
            parts.push(format!("non-null={{{}}}", definite.join(",")));
        }
        parts.join(" ")
    }
}

/// One journaled transfer-function application.
#[derive(Debug, Clone)]
pub struct AnalysisStep {
    /// Node path in [`Expr::children`] order.
    pub path: NodePath,
    /// Operator label at the node.
    pub op: String,
    /// Which transfer rule fired and what it concluded.
    pub note: String,
}

/// The result of analysing one plan: per-path properties plus the
/// transfer-function journal.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Derived properties per closed node path.
    pub props: BTreeMap<NodePath, Props>,
    /// One step per analysed node, in post-order.
    pub journal: Vec<AnalysisStep>,
}

impl Analysis {
    /// Properties at a node path, if the node was closed and analysed.
    pub fn props_at(&self, path: &[usize]) -> Option<&Props> {
        self.props.get(path)
    }

    /// Render every analysed node as `path  op: props`, root first.
    pub fn render(&self) -> String {
        let mut steps: Vec<&AnalysisStep> = self.journal.iter().collect();
        steps.sort_by(|a, b| a.path.cmp(&b.path));
        let mut out = String::new();
        for s in steps {
            let path = if s.path.is_empty() {
                "root".to_string()
            } else {
                format!(
                    "[{}]",
                    s.path
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(".")
                )
            };
            let props = self
                .props
                .get(&s.path)
                .map(Props::render)
                .unwrap_or_default();
            out.push_str(&format!("{path}  {}: {props}  — {}\n", s.op, s.note));
        }
        out
    }
}

/// Analyse a plan bottom-up against `data`.  Pass
/// [`crate::catalog::EmptyCatalog`] for the purely structural (data-free)
/// mode the verifier uses.
pub fn analyze(e: &Expr, data: &dyn Catalog) -> Analysis {
    let mut out = Analysis::default();
    let mut path = Vec::new();
    walk(e, 0, &mut path, data, &mut out);
    out
}

/// How many binders child `i` of `e` sits under, relative to `e`.
fn child_binder_delta(e: &Expr, i: usize) -> usize {
    let bound = match e {
        Expr::SetApply { .. }
        | Expr::ArrApply { .. }
        | Expr::Group { .. }
        | Expr::Select { .. }
        | Expr::ArrSelect { .. }
        | Expr::Comp { .. }
        | Expr::SetApplySwitch { .. } => i >= 1,
        Expr::RelJoin { .. } => i >= 2,
        _ => false,
    };
    usize::from(bound)
}

fn walk(
    e: &Expr,
    depth: usize,
    path: &mut NodePath,
    data: &dyn Catalog,
    out: &mut Analysis,
) -> Props {
    let mut kids = Vec::new();
    for (i, c) in e.children().into_iter().enumerate() {
        path.push(i);
        let p = walk(c, depth + child_binder_delta(e, i), path, data, out);
        path.pop();
        kids.push(p);
    }
    // A node is closed iff it references no enclosing binder.
    if (0..depth).any(|d| e.mentions_input(d)) {
        return Props::unknown();
    }
    let (props, note) = transfer(e, &kids, data);
    out.journal.push(AnalysisStep {
        path: path.clone(),
        op: op_label(e),
        note,
    });
    out.props.insert(path.clone(), props.clone());
    props
}

/// Saturating product of cardinality bounds.
fn mul_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    Some(a?.saturating_mul(b?))
}

/// Saturating sum of cardinality bounds.
fn add_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    Some(a?.saturating_add(b?))
}

/// Merge attribute maps across a union of occurrence populations.
fn union_attrs(a: &Props, b: &Props) -> BTreeMap<String, AttrProps> {
    let mut out = BTreeMap::new();
    let names: BTreeSet<&String> = a.attrs.keys().chain(b.attrs.keys()).collect();
    for name in names {
        let merge_side = |p: &Props| -> AttrProps {
            match p.attrs.get(name.as_str()) {
                Some(ap) => ap.clone(),
                // The side has no such field: vacuously never null there,
                // but presence fails unless the side provably has no
                // tuples carrying it — exhaustiveness gives us "absent",
                // which still breaks `present`.
                None if p.attrs_exhaustive => AttrProps {
                    present: if p.is_empty_coll() {
                        Fact::Always
                    } else {
                        Fact::Possible
                    },
                    dne: Fact::Never,
                    unk: Fact::Never,
                    kind: None,
                },
                None => AttrProps::top(),
            }
        };
        let (x, y) = (merge_side(a), merge_side(b));
        let kind = match (x.kind, y.kind) {
            (Some(k), Some(l)) if k == l => Some(k),
            (Some(k), None) if !b.attrs.contains_key(name.as_str()) && b.attrs_exhaustive => {
                Some(k)
            }
            (None, Some(l)) if !a.attrs.contains_key(name.as_str()) && a.attrs_exhaustive => {
                Some(l)
            }
            _ => None,
        };
        out.insert(
            name.to_string(),
            AttrProps {
                present: x.present.union(y.present),
                dne: x.dne.union(y.dne),
                unk: x.unk.union(y.unk),
                kind,
            },
        );
    }
    out
}

/// Facts about the value a predicate compares: proven non-null?
fn expr_never_null(e: &Expr, input: &Props) -> bool {
    match e {
        Expr::Const(v) => !v.is_null(),
        // The bound occurrence itself: a tuple when the input is
        // tuple-only (multisets never store `dne`; `tuple_only` rules
        // out `unk` elements too).
        Expr::Input(0) => input.tuple_only,
        Expr::TupExtract(inner, f) if matches!(&**inner, Expr::Input(0)) => {
            let ap = input.attr(f);
            input.tuple_only && ap.is_definite_key()
        }
        _ => false,
    }
}

/// Can the predicate ever evaluate to `unk` on an occurrence of `input`?
/// Conservative: `false` answers "maybe".
pub fn pred_never_unknown(p: &Pred, input: &Props) -> bool {
    match p {
        Pred::And(a, b) => pred_never_unknown(a, input) && pred_never_unknown(b, input),
        Pred::Not(a) => pred_never_unknown(a, input),
        Pred::Cmp(l, op, r) => {
            if *op == CmpOp::In {
                // Membership against a multiset can be three-valued via
                // `unk` members; do not attempt a proof.
                return false;
            }
            expr_never_null(l, input) && expr_never_null(r, input)
        }
    }
}

/// Compare two constant values under a comparison operator, when the
/// comparison is statically decidable (same-kind non-null values).
fn const_cmp(a: &Value, op: CmpOp, b: &Value) -> Option<bool> {
    if a.is_null() || b.is_null() || a.kind_name() != b.kind_name() {
        return None;
    }
    Some(match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::In => return None,
    })
}

/// Is the predicate provably unsatisfiable — no occurrence can make it
/// true?  Purely structural: constant contradictions, `x = c₁ ∧ x = c₂`
/// with `c₁ ≠ c₂`, and `p ∧ ¬p`.
///
/// ```
/// use excess_core::analysis::pred_unsatisfiable;
/// use excess_core::expr::{CmpOp, Expr, Pred};
///
/// let x = || Expr::input().extract("x");
/// let both = Pred::cmp(x(), CmpOp::Eq, Expr::int(1))
///     .and(Pred::cmp(x(), CmpOp::Eq, Expr::int(2)));
/// assert!(pred_unsatisfiable(&both));
/// assert!(!pred_unsatisfiable(&Pred::cmp(x(), CmpOp::Eq, Expr::int(1))));
/// ```
pub fn pred_unsatisfiable(p: &Pred) -> bool {
    let cs = crate::physical::conjuncts(p);
    // A definitely-false conjunct sinks the conjunction.
    for c in &cs {
        if let Pred::Cmp(l, op, r) = c {
            if let (Expr::Const(a), Expr::Const(b)) = (&**l, &**r) {
                if const_cmp(a, *op, b) == Some(false) {
                    return true;
                }
            }
        }
        if let Pred::Not(inner) = c {
            if let Pred::Cmp(l, op, r) = &**inner {
                if let (Expr::Const(a), Expr::Const(b)) = (&**l, &**r) {
                    if const_cmp(a, *op, b) == Some(true) {
                        return true;
                    }
                }
            }
        }
    }
    // `x = c₁ ∧ x = c₂` with distinct same-kind constants.
    let mut eqs: Vec<(&Expr, &Value)> = Vec::new();
    for c in &cs {
        if let Pred::Cmp(l, CmpOp::Eq, r) = c {
            match (&**l, &**r) {
                (x, Expr::Const(v)) if !v.is_null() => eqs.push((x, v)),
                (Expr::Const(v), x) if !v.is_null() => eqs.push((x, v)),
                _ => {}
            }
        }
    }
    for (i, (x, v)) in eqs.iter().enumerate() {
        for (y, w) in &eqs[i + 1..] {
            if x == y && v.kind_name() == w.kind_name() && v != w {
                return true;
            }
        }
    }
    // `p ∧ ¬p` syntactically.
    for c in &cs {
        if let Pred::Not(inner) = c {
            if cs.contains(&&**inner) {
                return true;
            }
        }
    }
    false
}

/// Is the predicate provably *never satisfied* — F on every occurrence,
/// never merely U?  Stronger than [`pred_unsatisfiable`]: under Kleene
/// logic an unsatisfiable predicate over nullable fields can still
/// evaluate to U (e.g. `unk = 1 ∧ unk = 2`), and σ/⋈ emit an `unk`
/// occurrence then, so only never-satisfied licenses an emptiness claim.
/// Holds when a conjunct is a constant falsehood (`F ∧ U = F` sinks the
/// conjunction regardless of nulls), or when the predicate is
/// unsatisfiable *and* provably never unknown on this input.
fn pred_never_satisfied(p: &Pred, input: &Props) -> bool {
    for c in crate::physical::conjuncts(p) {
        if let Pred::Cmp(l, op, r) = c {
            if let (Expr::Const(a), Expr::Const(b)) = (&**l, &**r) {
                if const_cmp(a, *op, b) == Some(false) {
                    return true;
                }
            }
        }
    }
    pred_unsatisfiable(p) && pred_never_unknown(p, input)
}

/// FDs a satisfied predicate imposes on the kept tuples: `f = g` gives
/// `f → g` and `g → f`; `f = const` pins `f` (an FD with empty lhs).
fn pred_fds(p: &Pred) -> Vec<Fd> {
    let mut out = Vec::new();
    for c in crate::physical::conjuncts(p) {
        let Pred::Cmp(l, CmpOp::Eq, r) = c else {
            continue;
        };
        match (&**l, &**r) {
            (Expr::TupExtract(li, f), Expr::TupExtract(ri, g))
                if matches!(&**li, Expr::Input(0)) && matches!(&**ri, Expr::Input(0)) =>
            {
                out.push(([f.clone()].into(), g.clone()));
                out.push(([g.clone()].into(), f.clone()));
            }
            (Expr::TupExtract(li, f), Expr::Const(v))
            | (Expr::Const(v), Expr::TupExtract(li, f))
                if matches!(&**li, Expr::Input(0)) && !v.is_null() =>
            {
                out.push((BTreeSet::new(), f.clone()));
            }
            _ => {}
        }
    }
    out
}

/// Transfer for a selection: a sub-multiset of the input, plus any
/// equality FDs the predicate enforces on survivors.  When the predicate
/// can evaluate to `unk`, the output picks up `unk` occurrences (which
/// merge), so distinctness claims are dropped.
fn select_transfer(input: &Props, pred: &Pred) -> (Props, String) {
    if pred_never_satisfied(pred, input) {
        if input.is_set() {
            return (
                Props::empty(CollKind::Set),
                "σ: predicate never satisfied — provably empty".into(),
            );
        }
        let mut p = Props::unknown();
        p.card_hi = Some(0);
        return (
            p,
            "σ: predicate never satisfied (input sort unproven — no emptiness claim)".into(),
        );
    }
    let never_u = pred_never_unknown(pred, input);
    let mut p = input.clone();
    p.card_lo = 0;
    p.fds.extend(pred_fds(pred));
    if !never_u {
        p.dup_free = false;
        p.tuple_only = false;
        p.keys.clear();
    }
    let note = if never_u {
        "σ: sub-multiset of a never-unk selection — keys and distinctness survive"
    } else {
        "σ: predicate may be unk — survivors keep attribute facts only"
    };
    (p, note.into())
}

/// Transfer for `SET_APPLY`/`ARR_APPLY` given the body shape.  Returns
/// the output props (collection sort is patched by the caller) and a
/// note naming the recognised shape.
fn body_transfer(input: &Props, body: &Expr) -> (Props, String) {
    match body {
        Expr::Input(0) => (input.clone(), "apply: identity body".into()),
        Expr::Project(inner, cols) if matches!(&**inner, Expr::Input(0)) => {
            let colset: BTreeSet<String> = cols.iter().cloned().collect();
            let dup_free = input.dup_free
                && input.tuple_only
                && input.attrs_exhaustive
                && input.superkey(&colset);
            let mut attrs = BTreeMap::new();
            for c in cols {
                let mut ap = input.attr(c);
                // π errors on a missing field, so on success it is
                // present in every surviving tuple.
                ap.present = Fact::Always;
                attrs.insert(c.clone(), ap);
            }
            let mut keys: Vec<BTreeSet<String>> = input
                .keys
                .iter()
                .filter(|k| dup_free && k.is_subset(&colset))
                .cloned()
                .collect();
            if dup_free && !keys.contains(&colset) {
                keys.push(colset.clone());
            }
            let fds = input
                .fds
                .iter()
                .filter(|(lhs, rhs)| lhs.is_subset(&colset) && colset.contains(rhs))
                .cloned()
                .collect();
            let note = if dup_free {
                format!("apply: π{cols:?} determines a key — duplicate-freeness preserved")
            } else {
                format!("apply: π{cols:?} may collapse tuples")
            };
            (
                Props {
                    coll: input.coll,
                    card_lo: input.card_lo,
                    card_hi: input.card_hi,
                    dup_free,
                    tuple_only: input.tuple_only,
                    attrs,
                    attrs_exhaustive: true,
                    keys,
                    fds,
                },
                note,
            )
        }
        Expr::TupExtract(inner, f) if matches!(&**inner, Expr::Input(0)) => {
            let single: BTreeSet<String> = [f.clone()].into();
            let ap = input.attr(f);
            let dup_free = input.dup_free
                && input.tuple_only
                && input.attrs_exhaustive
                && input.superkey(&single);
            // The extracted field can be `dne`, which multisets drop at
            // insertion: the count is only preserved when the field is
            // proven `dne`-free.
            let card_lo = if ap.dne == Fact::Never {
                input.card_lo
            } else {
                0
            };
            (
                Props {
                    coll: input.coll,
                    card_lo,
                    card_hi: input.card_hi,
                    dup_free,
                    tuple_only: false,
                    attrs: BTreeMap::new(),
                    attrs_exhaustive: false,
                    keys: Vec::new(),
                    fds: Vec::new(),
                },
                format!("apply: extract .{f} — key field ⇒ distinct values"),
            )
        }
        Expr::MakeTup(inner, name) if matches!(&**inner, Expr::Input(0)) => {
            let ap = if input.tuple_only {
                AttrProps::definite("tuple")
            } else {
                AttrProps {
                    present: Fact::Always,
                    dne: Fact::Possible,
                    unk: Fact::Possible,
                    kind: None,
                }
            };
            let keys = if input.dup_free {
                vec![[name.clone()].into()]
            } else {
                Vec::new()
            };
            (
                Props {
                    coll: input.coll,
                    card_lo: input.card_lo,
                    card_hi: input.card_hi,
                    dup_free: input.dup_free,
                    tuple_only: true,
                    attrs: [(name.clone(), ap)].into(),
                    attrs_exhaustive: true,
                    keys: if input.dup_free { keys } else { Vec::new() },
                    fds: Vec::new(),
                },
                format!("apply: TUP[{name}] wrap is injective"),
            )
        }
        Expr::MakeSet(inner) if matches!(&**inner, Expr::Input(0)) => (
            Props {
                coll: input.coll,
                card_lo: input.card_lo,
                card_hi: input.card_hi,
                dup_free: input.dup_free,
                tuple_only: false,
                attrs: BTreeMap::new(),
                attrs_exhaustive: false,
                keys: Vec::new(),
                fds: Vec::new(),
            },
            "apply: SET wrap is injective".into(),
        ),
        _ => (
            Props {
                coll: input.coll,
                card_lo: 0,
                card_hi: input.card_hi,
                dup_free: false,
                tuple_only: false,
                attrs: BTreeMap::new(),
                attrs_exhaustive: false,
                keys: Vec::new(),
                fds: Vec::new(),
            },
            "apply: opaque body — only the count bound survives (dne results drop)".into(),
        ),
    }
}

/// Transfer for flat-tuple concatenation (`rel_×` and the join's pair
/// construction): attribute facts union when both sides are exhaustive
/// with disjoint names (so `TUP_CAT` renames nothing and is injective).
fn cat_transfer(a: &Props, b: &Props) -> Props {
    let disjoint = a.attrs_exhaustive
        && b.attrs_exhaustive
        && a.attrs.keys().all(|k| !b.attrs.contains_key(k));
    let coll = if a.is_set() && b.is_set() {
        Some(CollKind::Set)
    } else {
        None
    };
    let dup_free = a.dup_free && b.dup_free && disjoint;
    let (attrs, attrs_exhaustive) = if disjoint {
        let mut attrs = a.attrs.clone();
        attrs.extend(b.attrs.iter().map(|(k, v)| (k.clone(), v.clone())));
        (attrs, true)
    } else {
        (BTreeMap::new(), false)
    };
    let mut keys = Vec::new();
    if dup_free {
        for ka in &a.keys {
            for kb in &b.keys {
                let k: BTreeSet<String> = ka.union(kb).cloned().collect();
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
    }
    let fds = if disjoint {
        a.fds.iter().chain(b.fds.iter()).cloned().collect()
    } else {
        Vec::new()
    };
    Props {
        coll,
        card_lo: a.card_lo.saturating_mul(b.card_lo),
        card_hi: mul_hi(a.card_hi, b.card_hi),
        dup_free,
        tuple_only: true,
        attrs,
        attrs_exhaustive,
        keys,
        fds,
    }
}

/// The transfer function: one explicit case per operator.
fn transfer(e: &Expr, kids: &[Props], data: &dyn Catalog) -> (Props, String) {
    let kid = |i: usize| kids.get(i).cloned().unwrap_or_else(Props::unknown);
    match e {
        // ----- leaves -----
        Expr::Input(_) => (Props::unknown(), "input: bound occurrence".into()),
        Expr::Named(n) => match data.get_object(n) {
            Some(v) => (
                Props::of_value(v),
                format!("named: base facts scanned from the stored value of {n}"),
            ),
            None => (
                Props::unknown(),
                format!("named: no data for {n} — structural mode"),
            ),
        },
        Expr::Const(v) => (Props::of_value(v), "const: literal scanned exactly".into()),

        // ----- multiset operators -----
        Expr::AddUnion(..) => {
            let (a, b) = (kid(0), kid(1));
            if a.is_empty_coll() && a.is_set() {
                return (
                    b,
                    "⊎: left branch provably empty — right passes through".into(),
                );
            }
            if b.is_empty_coll() && b.is_set() {
                return (
                    a,
                    "⊎: right branch provably empty — left passes through".into(),
                );
            }
            let coll = if a.is_set() && b.is_set() {
                Some(CollKind::Set)
            } else {
                None
            };
            (
                Props {
                    coll,
                    card_lo: a.card_lo.saturating_add(b.card_lo),
                    card_hi: add_hi(a.card_hi, b.card_hi),
                    dup_free: false,
                    tuple_only: a.tuple_only && b.tuple_only,
                    attrs: union_attrs(&a, &b),
                    attrs_exhaustive: a.attrs_exhaustive && b.attrs_exhaustive,
                    keys: Vec::new(),
                    fds: Vec::new(),
                },
                "⊎: cardinalities add; cross-branch duplicates unprovable".into(),
            )
        }
        Expr::Union(..) => {
            let (a, b) = (kid(0), kid(1));
            if a.is_empty_coll() && a.is_set() {
                return (
                    b,
                    "∪: left branch provably empty — right passes through".into(),
                );
            }
            if b.is_empty_coll() && b.is_set() {
                return (
                    a,
                    "∪: right branch provably empty — left passes through".into(),
                );
            }
            let coll = if a.is_set() && b.is_set() {
                Some(CollKind::Set)
            } else {
                None
            };
            (
                Props {
                    coll,
                    card_lo: a.card_lo.max(b.card_lo),
                    card_hi: add_hi(a.card_hi, b.card_hi),
                    dup_free: a.dup_free && b.dup_free,
                    tuple_only: a.tuple_only && b.tuple_only,
                    attrs: union_attrs(&a, &b),
                    attrs_exhaustive: a.attrs_exhaustive && b.attrs_exhaustive,
                    keys: Vec::new(),
                    fds: Vec::new(),
                },
                "∪: per-value max of counts — duplicate-free when both sides are".into(),
            )
        }
        Expr::Intersect(..) => {
            let (a, b) = (kid(0), kid(1));
            let coll = if a.is_set() && b.is_set() {
                Some(CollKind::Set)
            } else {
                None
            };
            let mut attrs = BTreeMap::new();
            let names: BTreeSet<&String> = a.attrs.keys().chain(b.attrs.keys()).collect();
            for name in names {
                let (x, y) = (a.attr(name), b.attr(name));
                attrs.insert(
                    name.clone(),
                    AttrProps {
                        present: x.present.refine(y.present),
                        dne: x.dne.refine(y.dne),
                        unk: x.unk.refine(y.unk),
                        kind: x.kind.or(y.kind),
                    },
                );
            }
            let mut keys = a.keys.clone();
            for k in &b.keys {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
            (
                Props {
                    coll,
                    card_lo: 0,
                    card_hi: match (a.card_hi, b.card_hi) {
                        (Some(x), Some(y)) => Some(x.min(y)),
                        (x, y) => x.or(y),
                    },
                    dup_free: a.dup_free || b.dup_free,
                    tuple_only: a.tuple_only || b.tuple_only,
                    attrs,
                    attrs_exhaustive: a.attrs_exhaustive || b.attrs_exhaustive,
                    keys,
                    fds: a.fds.iter().chain(b.fds.iter()).cloned().collect(),
                },
                "∩: per-value min of counts — both sides' facts apply".into(),
            )
        }
        Expr::Diff(..) => {
            let (a, b) = (kid(0), kid(1));
            let mut p = a.clone();
            p.card_lo = match b.card_hi {
                Some(bh) => a.card_lo.saturating_sub(bh),
                None => 0,
            };
            if !(a.is_set() && b.is_set()) {
                p.coll = None;
            }
            (
                p,
                "−: pointwise sub-multiset of the left input — its facts carry over".into(),
            )
        }
        Expr::MakeSet(_) => (
            // SET(dne) = { }: cardinality 0 or 1, always a multiset.
            Props {
                coll: Some(CollKind::Set),
                card_lo: 0,
                card_hi: Some(1),
                dup_free: true,
                tuple_only: false,
                attrs: BTreeMap::new(),
                attrs_exhaustive: false,
                keys: Vec::new(),
                fds: Vec::new(),
            },
            "SET: at most a singleton (SET(dne) = { })".into(),
        ),
        Expr::SetApply {
            body, only_types, ..
        } => {
            let input = kid(0);
            let (mut p, note) = body_transfer(&input, body);
            p.coll = if input.is_set() {
                Some(CollKind::Set)
            } else {
                None
            };
            if only_types.is_some() {
                // The exact-type filter drops non-matching occurrences.
                p.card_lo = 0;
            }
            (p, note)
        }
        Expr::Group { input: _, by } => {
            let input = kid(0);
            let coll = if input.is_set() {
                Some(CollKind::Set)
            } else {
                None
            };
            let empty = input.is_empty_coll() && input.is_set();
            (
                Props {
                    coll,
                    card_lo: if input.card_lo > 0 { 1 } else { 0 },
                    card_hi: if empty { Some(0) } else { input.card_hi },
                    // Classes are nonempty and determined by their
                    // `by`-value, so no two classes can be equal.
                    dup_free: true,
                    tuple_only: empty,
                    attrs: BTreeMap::new(),
                    attrs_exhaustive: empty,
                    keys: if empty {
                        vec![BTreeSet::new()]
                    } else {
                        Vec::new()
                    },
                    fds: Vec::new(),
                },
                format!(
                    "GRP: classes are pairwise distinct multisets{}",
                    if grp_by_superkey(&input, by) {
                        " (grouping key determines a candidate key — all classes singleton)"
                    } else {
                        ""
                    }
                ),
            )
        }
        Expr::DupElim(_) => {
            let input = kid(0);
            let mut p = input.clone();
            p.dup_free = true;
            p.card_lo = u64::from(input.card_lo > 0);
            if !input.is_set() {
                p.coll = None;
            }
            // Distinct tuples over one exhaustive, always-present field
            // set are keyed by that full field set.
            if p.tuple_only
                && p.attrs_exhaustive
                && !p.attrs.is_empty()
                && p.attrs.values().all(|ap| ap.present == Fact::Always)
            {
                let full: BTreeSet<String> = p.attrs.keys().cloned().collect();
                if !p.keys.contains(&full) {
                    p.keys.push(full);
                }
            }
            (p, "DE: output is duplicate-free by definition".into())
        }
        Expr::Cross(..) => {
            let (a, b) = (kid(0), kid(1));
            let coll = if a.is_set() && b.is_set() {
                Some(CollKind::Set)
            } else {
                None
            };
            if (a.is_empty_coll() && a.is_set()) || (b.is_empty_coll() && b.is_set()) {
                let mut p = Props::empty(CollKind::Set);
                p.coll = coll;
                return (p, "×: one side provably empty — no pairs".into());
            }
            let dup_free = a.dup_free && b.dup_free;
            let elem = |p: &Props| -> AttrProps {
                if p.tuple_only {
                    AttrProps::definite("tuple")
                } else {
                    AttrProps {
                        present: Fact::Always,
                        dne: Fact::Never, // multisets never store dne
                        unk: Fact::Possible,
                        kind: None,
                    }
                }
            };
            (
                Props {
                    coll,
                    card_lo: a.card_lo.saturating_mul(b.card_lo),
                    card_hi: mul_hi(a.card_hi, b.card_hi),
                    dup_free,
                    tuple_only: true,
                    attrs: [("fst".to_string(), elem(&a)), ("snd".to_string(), elem(&b))].into(),
                    attrs_exhaustive: true,
                    keys: if dup_free {
                        vec![["fst".to_string(), "snd".to_string()].into()]
                    } else {
                        Vec::new()
                    },
                    fds: Vec::new(),
                },
                "×: (fst, snd) pairs — distinct when both sides are".into(),
            )
        }
        Expr::SetCollapse(_) => {
            let input = kid(0);
            if input.is_empty_coll() && input.is_set() {
                return (
                    Props::empty(CollKind::Set),
                    "SET_COLLAPSE: empty outer multiset — provably empty".into(),
                );
            }
            let mut p = Props::unknown();
            if input.is_set() {
                p.coll = Some(CollKind::Set);
            }
            (p, "SET_COLLAPSE: inner sizes unknown".into())
        }

        // ----- tuple operators (scalar positions) -----
        Expr::Project(..) => (Props::unknown(), "π: single-tuple operator".into()),
        Expr::TupCat(..) => (Props::unknown(), "TUP_CAT: single-tuple operator".into()),
        Expr::TupExtract(..) => (
            Props::unknown(),
            "TUP_EXTRACT: field value — nested facts not tracked".into(),
        ),
        Expr::MakeTup(..) => (Props::unknown(), "TUP: single-tuple constructor".into()),

        // ----- array operators -----
        Expr::MakeArr(_) => (
            Props {
                coll: Some(CollKind::Array),
                card_lo: 0,
                card_hi: Some(1),
                dup_free: true,
                tuple_only: false,
                attrs: BTreeMap::new(),
                attrs_exhaustive: false,
                keys: Vec::new(),
                fds: Vec::new(),
            },
            "ARR: at most a singleton (ARR(dne) = [ ])".into(),
        ),
        Expr::ArrExtract(..) => (
            Props::unknown(),
            "ARR_EXTRACT: element value — nested facts not tracked".into(),
        ),
        Expr::ArrApply { body, .. } => {
            let input = kid(0);
            let (mut p, note) = body_transfer(&input, body);
            // Arrays keep dne results in place?  No — ARR_APPLY builds a
            // new array from body results; unlike multisets nothing is
            // dropped, but we keep the conservative bound from the body
            // transfer (a lower bound of 0 is always sound).
            p.coll = if input.coll == Some(CollKind::Array) {
                Some(CollKind::Array)
            } else {
                None
            };
            p.keys.clear(); // keys are a multiset notion here
            (p, note)
        }
        Expr::SubArr(_, m, n) => {
            let input = kid(0);
            if let (Bound::At(lo), Bound::At(hi)) = (*m, *n) {
                if lo > hi && input.coll == Some(CollKind::Array) {
                    return (
                        Props::empty(CollKind::Array),
                        "SUBARR: bounds inverted — provably empty".into(),
                    );
                }
            }
            let window = match (*m, *n) {
                (Bound::At(lo), Bound::At(hi)) => Some((hi.saturating_sub(lo) as u64) + 1),
                _ => None,
            };
            let mut p = input.clone();
            p.card_lo = 0;
            p.card_hi = match (input.card_hi, window) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            p.keys.clear();
            if input.coll != Some(CollKind::Array) {
                p.coll = None;
            }
            (
                p,
                "SUBARR: contiguous subsequence — per-occurrence facts survive".into(),
            )
        }
        Expr::ArrCat(..) => {
            let (a, b) = (kid(0), kid(1));
            let arr = |p: &Props| p.coll == Some(CollKind::Array);
            if a.is_empty_coll() && arr(&a) {
                return (b, "ARR_CAT: left branch provably empty".into());
            }
            if b.is_empty_coll() && arr(&b) {
                return (a, "ARR_CAT: right branch provably empty".into());
            }
            (
                Props {
                    coll: if arr(&a) && arr(&b) {
                        Some(CollKind::Array)
                    } else {
                        None
                    },
                    card_lo: a.card_lo.saturating_add(b.card_lo),
                    card_hi: add_hi(a.card_hi, b.card_hi),
                    dup_free: false,
                    tuple_only: a.tuple_only && b.tuple_only,
                    attrs: union_attrs(&a, &b),
                    attrs_exhaustive: a.attrs_exhaustive && b.attrs_exhaustive,
                    keys: Vec::new(),
                    fds: Vec::new(),
                },
                "ARR_CAT: lengths add".into(),
            )
        }
        Expr::ArrCollapse(_) => {
            let input = kid(0);
            if input.is_empty_coll() && input.coll == Some(CollKind::Array) {
                return (
                    Props::empty(CollKind::Array),
                    "ARR_COLLAPSE: empty outer array — provably empty".into(),
                );
            }
            let mut p = Props::unknown();
            if input.coll == Some(CollKind::Array) {
                p.coll = Some(CollKind::Array);
            }
            (p, "ARR_COLLAPSE: inner lengths unknown".into())
        }
        Expr::ArrDiff(..) => {
            let a = kid(0);
            let mut p = a.clone();
            p.card_lo = 0;
            p.keys.clear();
            if a.coll != Some(CollKind::Array) {
                p.coll = None;
            }
            (
                p,
                "ARR_DIFF: subsequence of the left input — its facts carry over".into(),
            )
        }
        Expr::ArrDupElim(_) => {
            let input = kid(0);
            let mut p = input.clone();
            p.dup_free = true;
            p.card_lo = u64::from(input.card_lo > 0);
            p.keys.clear();
            if input.coll != Some(CollKind::Array) {
                p.coll = None;
            }
            (p, "ARR_DE: output is duplicate-free by definition".into())
        }
        Expr::ArrCross(..) => {
            let (a, b) = (kid(0), kid(1));
            (
                Props {
                    coll: if a.coll == Some(CollKind::Array) && b.coll == Some(CollKind::Array) {
                        Some(CollKind::Array)
                    } else {
                        None
                    },
                    card_lo: a.card_lo.saturating_mul(b.card_lo),
                    card_hi: mul_hi(a.card_hi, b.card_hi),
                    dup_free: a.dup_free && b.dup_free,
                    tuple_only: true,
                    attrs: BTreeMap::new(),
                    attrs_exhaustive: false,
                    keys: Vec::new(),
                    fds: Vec::new(),
                },
                "ARR_×: ordered pairs — distinct when both sides are".into(),
            )
        }

        // ----- references, predicates, calls -----
        Expr::MakeRef(..) => (Props::unknown(), "REF: mints an OID".into()),
        Expr::Deref(_) => (
            Props::unknown(),
            "DEREF: referenced value — not tracked across the store".into(),
        ),
        Expr::Comp { .. } => (
            Props::unknown(),
            "COMP: value-or-null — no collection facts".into(),
        ),
        Expr::Call(..) => (Props::unknown(), "call: scalar function".into()),

        // ----- derived operators -----
        Expr::Select { pred, .. } => {
            let input = kid(0);
            let (mut p, note) = select_transfer(&input, pred);
            if !input.is_set() {
                p.coll = None;
            }
            (p, note)
        }
        Expr::ArrSelect { pred, .. } => {
            let input = kid(0);
            // ARR_APPLY_COMP keeps placeholders for rejected elements, so
            // only the length bound is safe to carry.
            let mut p = Props::unknown();
            if input.coll == Some(CollKind::Array) {
                p.coll = Some(CollKind::Array);
            }
            p.card_hi = input.card_hi;
            let _ = pred;
            (
                p,
                "ARR_σ: rejected elements leave nulls — only the length bound survives".into(),
            )
        }
        Expr::RelJoin { pred, .. } => {
            let (a, b) = (kid(0), kid(1));
            if (a.is_empty_coll() && a.is_set()) || (b.is_empty_coll() && b.is_set()) {
                return (
                    Props::empty(CollKind::Set),
                    "rel_join: one side provably empty — no pairs".into(),
                );
            }
            let cat = cat_transfer(&a, &b);
            let (mut p, _) = select_transfer(&cat, pred);
            p.card_lo = 0;
            p.coll = cat.coll;
            let note = if p.dup_free {
                "rel_join: both sides duplicate-free with disjoint attrs and a never-unk \
                 predicate — output duplicate-free with keys K_left ∪ K_right"
            } else {
                "rel_join: concatenated pairs filtered by Θ"
            };
            (p, note.into())
        }
        Expr::RelCross(..) => {
            let (a, b) = (kid(0), kid(1));
            if (a.is_empty_coll() && a.is_set()) || (b.is_empty_coll() && b.is_set()) {
                return (
                    Props::empty(CollKind::Set),
                    "rel_×: one side provably empty — no pairs".into(),
                );
            }
            (
                cat_transfer(&a, &b),
                "rel_×: concatenated flat tuples — injective when attr sets are \
                 disjoint and exhaustive"
                    .into(),
            )
        }
        Expr::SetApplySwitch { .. } => {
            let input = kid(0);
            let mut p = Props::unknown();
            if input.is_set() {
                p.coll = Some(CollKind::Set);
            }
            p.card_hi = input.card_hi;
            (
                p,
                "SET_APPLY_SWITCH: per-type bodies — only the count bound survives".into(),
            )
        }
    }
}

/// The property-derived lint family: structural facts the dataflow pass
/// proves that the rule catalogue could exploit.  Uses the same node-path
/// scheme as [`crate::verify()`]; called by `verify` in data-free mode and
/// available with a data-backed [`Analysis`] for richer findings.
pub fn property_lints(e: &Expr, a: &Analysis) -> Vec<crate::verify::Diagnostic> {
    let mut out = Vec::new();
    let mut path = NodePath::new();
    lint_walk(e, &mut path, a, &mut out);
    out
}

fn property_lint(
    out: &mut Vec<crate::verify::Diagnostic>,
    path: &[usize],
    code: &'static str,
    message: String,
) {
    out.push(crate::verify::Diagnostic {
        path: path.to_vec(),
        severity: crate::verify::Severity::Lint,
        code,
        message,
    });
}

fn lint_walk(
    e: &Expr,
    path: &mut NodePath,
    a: &Analysis,
    out: &mut Vec<crate::verify::Diagnostic>,
) {
    for (i, c) in e.children().into_iter().enumerate() {
        path.push(i);
        lint_walk(c, path, a, out);
        path.pop();
    }
    fn child_props(a: &Analysis, path: &[usize], i: usize) -> Props {
        let mut p = path.to_vec();
        p.push(i);
        a.props.get(&p).cloned().unwrap_or_else(Props::unknown)
    }
    match e {
        // DE(DE(·)) and DE(GRP(·)) already have dedicated lints.
        Expr::DupElim(inner)
            if !matches!(&**inner, Expr::DupElim(_) | Expr::Group { .. })
                && child_props(a, path, 0).dup_free =>
        {
            property_lint(
                out,
                path,
                "lint-redundant-de",
                "DE over an input proven duplicate-free — the analysis licenses \
                 dropping it (rel4 territory)"
                    .into(),
            );
        }
        Expr::ArrDupElim(inner)
            if !matches!(&**inner, Expr::ArrDupElim(_)) && child_props(a, path, 0).dup_free =>
        {
            property_lint(
                out,
                path,
                "lint-redundant-distinct",
                "ARR_DE over an array proven duplicate-free — the analysis licenses \
                 dropping it"
                    .into(),
            );
        }
        Expr::AddUnion(..)
        | Expr::Union(..)
        | Expr::Diff(..)
        | Expr::Intersect(..)
        | Expr::Cross(..)
        | Expr::RelCross(..)
        | Expr::ArrCat(..) => {
            for i in 0..2 {
                if child_props(a, path, i).is_empty_coll() {
                    path.push(i);
                    property_lint(
                        out,
                        path,
                        "lint-always-empty-branch",
                        format!(
                            "operand {i} of {} is provably empty — the branch contributes \
                             nothing",
                            op_label(e)
                        ),
                    );
                    path.pop();
                }
            }
        }
        Expr::RelJoin { pred, .. } => {
            for i in 0..2 {
                if child_props(a, path, i).is_empty_coll() {
                    path.push(i);
                    property_lint(
                        out,
                        path,
                        "lint-always-empty-branch",
                        format!("operand {i} of rel_join is provably empty — no pairs can form"),
                    );
                    path.pop();
                }
            }
            if pred_unsatisfiable(pred) {
                property_lint(
                    out,
                    path,
                    "lint-unsatisfiable-predicate",
                    "rel_join predicate is provably unsatisfiable — no pair can satisfy it".into(),
                );
            }
        }
        Expr::Select { pred, .. } | Expr::ArrSelect { pred, .. } | Expr::Comp { pred, .. }
            if pred_unsatisfiable(pred) =>
        {
            property_lint(
                out,
                path,
                "lint-unsatisfiable-predicate",
                format!(
                    "{} predicate is provably unsatisfiable — no occurrence can pass",
                    op_label(e)
                ),
            );
        }
        Expr::Group { by, .. } if grp_by_superkey(&child_props(a, path, 0), by) => {
            property_lint(
                out,
                path,
                "lint-key-preserving-grp",
                "grouping key determines a candidate key of the input — every \
                 equivalence class is a singleton"
                    .into(),
            );
        }
        _ => {}
    }
}

/// Does the grouping expression determine a candidate key of the input
/// (so every equivalence class is a singleton)?
pub fn grp_by_superkey(input: &Props, by: &Expr) -> bool {
    if !(input.dup_free && input.tuple_only) {
        return false;
    }
    let cols: BTreeSet<String> = match by {
        Expr::Input(0) => return true, // grouping by the whole occurrence
        Expr::TupExtract(inner, f) if matches!(&**inner, Expr::Input(0)) => [f.clone()].into(),
        Expr::Project(inner, cols) if matches!(&**inner, Expr::Input(0)) => {
            cols.iter().cloned().collect()
        }
        _ => return false,
    };
    input.superkey(&cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EmptyCatalog;
    use std::collections::HashMap;

    fn tup(fields: &[(&str, Value)]) -> Value {
        Value::tuple(fields.iter().map(|(n, v)| (n.to_string(), v.clone())))
    }

    fn people() -> Value {
        Value::set([
            tup(&[("id", Value::int(1)), ("dept", Value::str("cs"))]),
            tup(&[("id", Value::int(2)), ("dept", Value::str("cs"))]),
            tup(&[("id", Value::int(3)), ("dept", Value::str("ee"))]),
        ])
    }

    #[test]
    fn base_facts_scan_keys_and_nullability() {
        let p = Props::of_value(&people());
        assert_eq!(p.coll, Some(CollKind::Set));
        assert_eq!((p.card_lo, p.card_hi), (3, Some(3)));
        assert!(p.dup_free && p.tuple_only && p.attrs_exhaustive);
        assert!(p.attr("id").is_definite_key());
        assert_eq!(p.attr("id").kind, Some("scalar"));
        assert!(p.keys.contains(&["id".to_string()].into()));
        assert!(!p.keys.contains(&["dept".to_string()].into()));
    }

    #[test]
    fn nulls_and_duplicates_are_detected() {
        let v = Value::set([
            tup(&[("a", Value::int(1)), ("b", Value::unk())]),
            tup(&[("a", Value::int(1)), ("b", Value::unk())]),
        ]);
        let p = Props::of_value(&v);
        assert!(!p.dup_free);
        assert_eq!(p.attr("b").unk, Fact::Possible);
        assert_eq!(p.attr("a").dne, Fact::Never);
        assert!(p.keys.is_empty());
    }

    #[test]
    fn dup_elim_over_named_data_is_provably_duplicate_free() {
        let mut cat: HashMap<String, Value> = HashMap::new();
        cat.insert("P".into(), people());
        let e = Expr::named("P").dup_elim();
        let a = analyze(&e, &cat);
        let root = a.props_at(&[]).unwrap();
        assert!(root.dup_free);
        // The child was already duplicate-free: the DE is redundant.
        assert!(a.props_at(&[0]).unwrap().dup_free);
    }

    #[test]
    fn unsat_predicate_proves_emptiness() {
        let mut cat: HashMap<String, Value> = HashMap::new();
        cat.insert("P".into(), people());
        let e = Expr::named("P").select(Pred::cmp(Expr::int(1), CmpOp::Eq, Expr::int(2)));
        let a = analyze(&e, &cat);
        assert!(a.props_at(&[]).unwrap().is_empty_coll());
    }

    #[test]
    fn structural_mode_makes_no_claims_about_named_leaves() {
        let e = Expr::named("P").dup_elim();
        let a = analyze(&e, &EmptyCatalog);
        assert!(!a.props_at(&[0]).unwrap().dup_free);
        assert!(a.props_at(&[]).unwrap().dup_free);
        assert!(a.props_at(&[]).unwrap().coll.is_none());
    }

    #[test]
    fn fd_closure_reaches_keys_through_equality() {
        let mut p = Props::of_value(&people());
        p.fds.push((["dept".to_string()].into(), "id".to_string()));
        assert!(p.superkey(&["dept".to_string()].into()));
    }
}
