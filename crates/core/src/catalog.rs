//! The catalog abstraction: named, top-level, persistent database objects.
//!
//! EXCESS queries "range over structures created using the create
//! statement" (Section 2.2).  The evaluator resolves `Expr::Named` leaves
//! through this trait; `excess-db` provides the full implementation, and a
//! plain `HashMap` works for tests and examples.

use excess_types::Value;
use std::collections::HashMap;

/// Resolves named top-level objects to their current values.
pub trait Catalog {
    /// The value of the named object, if it exists.
    fn get_object(&self, name: &str) -> Option<&Value>;
}

impl Catalog for HashMap<String, Value> {
    fn get_object(&self, name: &str) -> Option<&Value> {
        self.get(name)
    }
}

/// The empty catalog (queries with no named leaves).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyCatalog;

impl Catalog for EmptyCatalog {
    fn get_object(&self, _name: &str) -> Option<&Value> {
        None
    }
}
