//! The catalog abstraction: named, top-level, persistent database objects.
//!
//! EXCESS queries "range over structures created using the create
//! statement" (Section 2.2).  The evaluator resolves `Expr::Named` leaves
//! through this trait; `excess-db` provides the full implementation, and a
//! plain `HashMap` works for tests and examples.

use excess_types::{Chunk, Value};
use std::collections::HashMap;

/// Resolves named top-level objects to their current values.
pub trait Catalog {
    /// The value of the named object, if it exists.
    fn get_object(&self, name: &str) -> Option<&Value>;

    /// The columnar chunk encoding of the named object, when the catalog
    /// maintains one (see [`excess_types::Chunk`]).  The default is
    /// `None`: chunks are an optimisation, never required — a batched
    /// kernel that finds no chunk falls back to the row evaluator.
    fn get_chunk(&self, _name: &str) -> Option<&Chunk> {
        None
    }
}

impl Catalog for HashMap<String, Value> {
    fn get_object(&self, name: &str) -> Option<&Value> {
        self.get(name)
    }
}

/// The empty catalog (queries with no named leaves).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyCatalog;

impl Catalog for EmptyCatalog {
    fn get_object(&self, _name: &str) -> Option<&Value> {
        None
    }
}

/// A catalog that serves both row values and column chunks — the test
/// and bench counterpart of `excess-db`'s chunk-caching catalog.
#[derive(Debug, Clone, Default)]
pub struct ChunkedCatalog {
    /// Row representation per named object.
    pub objects: HashMap<String, Value>,
    /// Columnar representation per named object (independently optional).
    pub chunks: HashMap<String, Chunk>,
}

impl ChunkedCatalog {
    /// Insert an object and, when it is chunk-safe, its columnar
    /// encoding (no nullability hints; see [`Chunk::encode`]).
    pub fn put(&mut self, name: impl Into<String>, v: Value) {
        let name = name.into();
        if let Value::Set(s) = &v {
            if let Some(chunk) = Chunk::encode(s, &Default::default()) {
                self.chunks.insert(name.clone(), chunk);
            }
        }
        self.objects.insert(name, v);
    }
}

impl Catalog for ChunkedCatalog {
    fn get_object(&self, name: &str) -> Option<&Value> {
        self.objects.get(name)
    }

    fn get_chunk(&self, name: &str) -> Option<&Chunk> {
        self.chunks.get(name)
    }
}
