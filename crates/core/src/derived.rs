//! Derived operators defined atop the primitives.
//!
//! Section 6 lists as future work "testing of various algebraic operators,
//! defined in terms of the primitive ones listed in Section 3, to
//! determine which of these derived operators will be useful for query
//! processing or amenable to optimization".  This module is that library:
//! every combinator below returns a plain [`Expr`] built from the 23
//! primitives (and the Appendix §1 derived nodes), so the optimizer's
//! rules apply to them with no special cases.
//!
//! The nested-relational restructurings (`nest`/`unnest`) show the algebra
//! simulating the NF² algebras of \[Sche86, Roth88\]; the join variants
//! cover the common query-processing derived forms.

use crate::expr::{CmpOp, Expr, Func, Pred};

/// `nest_{by}(A)`: partition a multiset by a key expression and return the
/// multiset of groups — simply `GRP`, named for its NF² role.
pub fn nest(input: Expr, by: Expr) -> Expr {
    input.group_by(by)
}

/// `unnest(A)`: flatten a multiset of multisets — `SET_COLLAPSE`.
pub fn unnest(input: Expr) -> Expr {
    input.set_collapse()
}

/// `nest_pairs_{key, val}(A)`: group by `key` and emit `(key, group)`
/// tuples, where `group` collects `val` of each member — the classic
/// NF² NEST that *keeps* the grouping key (plain `GRP` drops it).
pub fn nest_pairs(input: Expr, key: Expr, val: Expr) -> Expr {
    // Groups are non-empty, so the key of any member is the group key:
    // (key: the(per-member keys), group: per-member vals).
    //
    // Binder arithmetic: `key`/`val` are written against one binder
    // (Input(0) = element, as in GRP).  Re-used here they sit under two
    // binders (group, then element); the element is still the innermost
    // Input(0), and only *free* references (≥ 1) shift by the two new
    // levels.
    let keys_of_group = Expr::input().set_apply(key.shift_inputs(1, 2));
    let vals_of_group = Expr::input().set_apply(val.shift_inputs(1, 2));
    input.group_by(key).set_apply(
        Expr::call(Func::The, vec![keys_of_group])
            .make_tup("key")
            .tup_cat(vals_of_group.make_tup("group")),
    )
}

/// Semijoin `A ⋉_θ B`: the elements of A that join with at least one
/// element of B.  Derivation: σ over A whose predicate counts matches.
pub fn semijoin(left: Expr, right: Expr, theta: impl Fn(Expr, Expr) -> Pred) -> Expr {
    // For each a ∈ A: keep a iff count(σ_{θ(a,b)}(B)) > 0.
    let matches = right
        .shift_inputs(0, 1)
        .select(theta(Expr::input_at(1), Expr::input()));
    left.select(Pred::cmp(
        Expr::call(Func::Count, vec![matches]),
        CmpOp::Gt,
        Expr::int(0),
    ))
}

/// Antijoin `A ▷_θ B`: the elements of A with *no* match in B.
pub fn antijoin(left: Expr, right: Expr, theta: impl Fn(Expr, Expr) -> Pred) -> Expr {
    let matches = right
        .shift_inputs(0, 1)
        .select(theta(Expr::input_at(1), Expr::input()));
    left.select(Pred::cmp(
        Expr::call(Func::Count, vec![matches]),
        CmpOp::Eq,
        Expr::int(0),
    ))
}

/// Group counts: `(key, n)` per distinct key — GROUP BY … COUNT(*).
pub fn count_by(input: Expr, key: Expr) -> Expr {
    let keys_of_group = Expr::input().set_apply(key.shift_inputs(1, 2));
    input.group_by(key).set_apply(
        Expr::call(Func::The, vec![keys_of_group])
            .make_tup("key")
            .tup_cat(Expr::call(Func::Count, vec![Expr::input()]).make_tup("n")),
    )
}

/// `exists(A)`: `true`/`false` as a scalar — `count(A) > 0` through COMP.
pub fn exists(input: Expr) -> Expr {
    // the(σ_{count>0}({true})) — true when non-empty, dne otherwise; wrap
    // in a second stage yielding a proper boolean.
    let c = Expr::call(Func::Count, vec![input]);
    Expr::call(
        Func::The,
        vec![Expr::lit(excess_types::Value::bool(true))
            .make_set()
            .select(Pred::cmp(c.shift_inputs(0, 1), CmpOp::Gt, Expr::int(0)))],
    )
}

/// Top-1 by a key: the element whose `key` equals the maximum — ties keep
/// every maximal element.
pub fn argmax(input: Expr, key: Expr) -> Expr {
    let max_key = Expr::call(Func::Max, vec![input.clone().set_apply(key.clone())]);
    input.select(Pred::cmp(key, CmpOp::Eq, max_key.shift_inputs(0, 1)))
}

/// Multiset scaling `k · A`: each cardinality multiplied by `k ≥ 0`, via
/// repeated ⊎ (a structural recursion the optimizer can still see);
/// `k = 0` is the empty multiset, expressed as `A − A`.
pub fn scale_total(input: Expr, k: u32) -> Expr {
    if k == 0 {
        return input.clone().diff(input);
    }
    let mut out = input.clone();
    for _ in 1..k {
        out = out.add_union(input.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::eval::{evaluate, EvalCtx};
    use excess_types::{ObjectStore, TypeRegistry, Value};
    use std::collections::HashMap;

    fn run(e: &Expr, objects: &[(&str, Value)]) -> Value {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = objects
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        let catref: &dyn Catalog = &cat;
        let mut ctx = EvalCtx::new(&reg, &mut store, catref);
        evaluate(e, &mut ctx).unwrap()
    }

    fn rows() -> Value {
        Value::set([
            Value::tuple([("k", Value::int(1)), ("v", Value::str("a"))]),
            Value::tuple([("k", Value::int(1)), ("v", Value::str("b"))]),
            Value::tuple([("k", Value::int(2)), ("v", Value::str("c"))]),
        ])
    }

    #[test]
    fn nest_then_unnest_is_identity_on_occurrences() {
        let nested = nest(Expr::named("R"), Expr::input().extract("k"));
        let flat = unnest(nested);
        assert_eq!(run(&flat, &[("R", rows())]), rows());
    }

    #[test]
    fn nest_pairs_keeps_the_key() {
        let e = nest_pairs(
            Expr::named("R"),
            Expr::input().extract("k"),
            Expr::input().extract("v"),
        );
        let out = run(&e, &[("R", rows())]);
        let expected = Value::set([
            Value::tuple([
                ("key", Value::int(1)),
                ("group", Value::set([Value::str("a"), Value::str("b")])),
            ]),
            Value::tuple([
                ("key", Value::int(2)),
                ("group", Value::set([Value::str("c")])),
            ]),
        ]);
        assert_eq!(out, expected);
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let nums = Value::set([1, 2, 3, 4].map(Value::int));
        let evens = Value::set([2, 4, 6].map(Value::int));
        let theta = |a: Expr, b: Expr| Pred::cmp(a, CmpOp::Eq, b);
        let semi = semijoin(Expr::named("N"), Expr::named("E"), theta);
        let theta2 = |a: Expr, b: Expr| Pred::cmp(a, CmpOp::Eq, b);
        let anti = antijoin(Expr::named("N"), Expr::named("E"), theta2);
        let objs = [("N", nums.clone()), ("E", evens)];
        assert_eq!(run(&semi, &objs), Value::set([2, 4].map(Value::int)));
        assert_eq!(run(&anti, &objs), Value::set([1, 3].map(Value::int)));
        // ⋉ ⊎ ▷ = identity
        let both = semijoin(Expr::named("N"), Expr::named("E"), |a, b| {
            Pred::cmp(a, CmpOp::Eq, b)
        })
        .add_union(antijoin(Expr::named("N"), Expr::named("E"), |a, b| {
            Pred::cmp(a, CmpOp::Eq, b)
        }));
        assert_eq!(run(&both, &objs), nums);
    }

    #[test]
    fn count_by_counts() {
        let e = count_by(Expr::named("R"), Expr::input().extract("k"));
        let out = run(&e, &[("R", rows())]);
        let expected = Value::set([
            Value::tuple([("key", Value::int(1)), ("n", Value::int(2))]),
            Value::tuple([("key", Value::int(2)), ("n", Value::int(1))]),
        ]);
        assert_eq!(out, expected);
    }

    #[test]
    fn exists_is_boolean() {
        let non_empty = Value::set([Value::int(1)]);
        let empty = Value::set([]);
        assert_eq!(
            run(&exists(Expr::named("X")), &[("X", non_empty)]),
            Value::bool(true)
        );
        // Empty input: the(σ over {true}) = dne ("no witness exists").
        assert_eq!(
            run(&exists(Expr::named("X")), &[("X", empty)]),
            Value::dne()
        );
    }

    #[test]
    fn argmax_keeps_all_maximal_elements() {
        let e = argmax(Expr::named("R"), Expr::input().extract("k"));
        let out = run(&e, &[("R", rows())]);
        assert_eq!(
            out,
            Value::set([Value::tuple([("k", Value::int(2)), ("v", Value::str("c"))])])
        );
    }

    #[test]
    fn scale_multiplies_cardinalities() {
        let nums = Value::set([1, 1, 2].map(Value::int));
        let e = scale_total(Expr::named("N"), 3);
        let out = run(&e, &[("N", nums)]);
        assert_eq!(out.as_set().unwrap().count(&Value::int(1)), 6);
        assert_eq!(out.as_set().unwrap().count(&Value::int(2)), 3);
        let zero = scale_total(Expr::named("N"), 0);
        assert!(run(&zero, &[("N", Value::set([Value::int(5)]))])
            .as_set()
            .unwrap()
            .is_empty());
    }
}
