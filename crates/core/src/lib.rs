//! # excess-core — the EXCESS algebra
//!
//! The paper's primary contribution: a many-sorted algebra whose four sorts
//! are multisets, tuples, arrays, and references.  This crate defines the
//! expression AST ([`Expr`]) with the 23 primitive operators of Section
//! 3.2, the derived operators of Appendix §1 as first-class nodes, the
//! three-valued predicate machinery (`COMP`, `dne`/`unk`), and the
//! evaluator with work counters that make the paper's cost arguments
//! measurable.
//!
//! ```
//! use excess_core::{evaluate, EvalCtx, Expr};
//! use excess_types::{ObjectStore, TypeRegistry, Value};
//! use std::collections::HashMap;
//!
//! // DE({1,1,2}) = {1,2}
//! let reg = TypeRegistry::new();
//! let mut store = ObjectStore::new();
//! let cat: HashMap<String, Value> = HashMap::new();
//! let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
//! let e = Expr::lit(Value::set([Value::int(1), Value::int(1), Value::int(2)])).dup_elim();
//! let out = evaluate(&e, &mut ctx).unwrap();
//! assert_eq!(out, Value::set([Value::int(1), Value::int(2)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod canon;
pub mod catalog;
pub mod columnar;
pub mod counters;
pub mod derived;
pub mod error;
pub mod eval;
pub mod expr;
pub mod infer;
pub mod json;
pub mod ops;
pub mod physical;
pub mod profile;
pub mod render;
pub mod verify;

pub use canon::{canonical_form, equal_modulo_identity};
pub use catalog::{Catalog, ChunkedCatalog, EmptyCatalog};
pub use columnar::{
    columnar_distinct, columnar_group, columnar_hash_join, compile_scan_filter, join_keys_usable,
    run_scan_filter, scan_pred_compiles, ChunkKernel, ScanFilter,
};
pub use counters::Counters;
pub use error::{EvalError, EvalResult};
pub use eval::{eval, evaluate, exact_type_of, exact_type_of_parts, EvalCtx};
pub use expr::{Bound, CmpOp, Expr, Func, Pred};
pub use json::{escape_json, millis, number, parse_json, path_json, quote_json, JsonValue};
pub use ops::predicate::Truth;
pub use physical::{
    equi_key_candidates, evaluate_physical, usable_equi_key, PhysChoice, PhysOp, PhysicalPlan,
};
pub use profile::{path_string, NodePath, NodeProfile, Profile, TraceSink};
pub use verify::{resolve_deep, verify, Diagnostic, Report, Severity};
