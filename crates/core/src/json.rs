//! JSON helpers shared by every hand-rolled serializer — and a minimal
//! parser for checking their output.
//!
//! The workspace deliberately has no serialization dependency; the
//! observability layers (`excess-db`'s JSON module, `excess-telemetry`,
//! the report binary) build JSON with plain string formatting.  The
//! pieces that are easy to get subtly wrong — escaping string payloads,
//! rendering non-finite floats, formatting node paths and durations —
//! live here so there is exactly one implementation of each to test.
//! [`parse_json`] is the other direction: a small recursive-descent
//! parser used by golden tests (and the report binary's self-checks) to
//! assert that the serializers emit well-formed documents with the keys
//! consumers rely on, without pulling in serde.

use std::time::Duration;

/// Escape a string for inclusion in a JSON document (adds no quotes).
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// characters by short form (`\n`, `\r`, `\t`), and every remaining
/// control character below U+0020 as `\u00XX`.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// [`escape_json`] plus the surrounding double quotes — a complete JSON
/// string literal.
pub fn quote_json(s: &str) -> String {
    format!("\"{}\"", escape_json(s))
}

/// Render an `f64` so the output is valid JSON: finite values print via
/// `Display`, `NaN`/`±inf` (which JSON has no literals for) become
/// `null`.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render a [`Duration`] as fractional milliseconds (the unit every
/// serializer in the workspace reports wall time in).
pub fn millis(d: Duration) -> String {
    number(d.as_secs_f64() * 1e3)
}

/// Render a node path (child indices from the plan root) as a JSON array
/// of integers — the machine-readable counterpart of
/// `profile::path_string`.
pub fn path_json(path: &[usize]) -> String {
    let parts: Vec<String> = path.iter().map(|i| i.to_string()).collect();
    format!("[{}]", parts.join(","))
}

/// A parsed JSON document — the minimal value tree needed to assert on
/// serializer output.  Object member order is preserved as written.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's members in document order, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a JSON document.  Strict enough for round-trip tests (rejects
/// trailing garbage, bad escapes, unterminated literals) while accepting
/// everything the workspace serializers emit.
pub fn parse_json(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        let got = self.bump()?;
        if got == c {
            Ok(())
        } else {
            Err(format!("expected `{c}`, found `{got}` at {}", self.pos - 1))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek().ok_or("unexpected end of input")? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(JsonValue::Str(self.string()?)),
            't' => self.literal("true", JsonValue::Bool(true)),
            'f' => self.literal("false", JsonValue::Bool(false)),
            'n' => self.literal("null", JsonValue::Null),
            '-' | '0'..='9' => self.num(),
            c => Err(format!("unexpected `{c}` at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(JsonValue::Obj(members)),
                c => return Err(format!("expected `,` or `}}`, found `{c}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(JsonValue::Arr(items)),
                c => return Err(format!("expected `,` or `]`, found `{c}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut cp = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            cp = cp * 16 + d.to_digit(16).ok_or(format!("bad hex digit `{d}`"))?;
                        }
                        out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                    }
                    c => return Err(format!("bad escape `\\{c}`")),
                },
                c => out.push(c),
            }
        }
    }

    fn num(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape_json("hello world"), "hello world");
        assert_eq!(quote_json("hello"), "\"hello\"");
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(quote_json("say \"hi\""), "\"say \\\"hi\\\"\"");
    }

    #[test]
    fn named_control_characters_use_short_forms() {
        assert_eq!(escape_json("a\nb\rc\td"), "a\\nb\\rc\\td");
    }

    #[test]
    fn remaining_control_characters_use_unicode_escapes() {
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("\u{1f}"), "\\u001f");
    }

    #[test]
    fn non_ascii_text_is_left_alone() {
        assert_eq!(escape_json("σ ⋈ π — ∅"), "σ ⋈ π — ∅");
    }

    #[test]
    fn number_rejects_non_finite() {
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn millis_renders_fractional_ms() {
        assert_eq!(millis(Duration::from_micros(1500)), "1.5");
    }

    #[test]
    fn path_json_renders_indices() {
        assert_eq!(path_json(&[]), "[]");
        assert_eq!(path_json(&[0, 2, 1]), "[0,2,1]");
    }

    #[test]
    fn escaped_output_round_trips_through_the_parser() {
        let original = "line1\nline2\t\"quoted\" \\ end\u{02} σ";
        let doc = format!("{{\"k\":{}}}", quote_json(original));
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parser_handles_nested_documents() {
        let v =
            parse_json("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":true,\"d\":null},\"e\":\"x\"}").unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn parser_preserves_object_member_order() {
        let v = parse_json("{\"z\":1,\"a\":2}").unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }
}
