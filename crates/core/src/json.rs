//! JSON string escaping shared by every hand-rolled serializer.
//!
//! The workspace deliberately has no serialization dependency; the
//! observability layers (`excess-db`'s JSON module, the report binary)
//! build JSON with plain string formatting.  The one piece that is easy
//! to get subtly wrong — escaping string payloads — lives here so there
//! is exactly one implementation to test.

/// Escape a string for inclusion in a JSON document (adds no quotes).
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// characters by short form (`\n`, `\r`, `\t`), and every remaining
/// control character below U+0020 as `\u00XX`.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// [`escape_json`] plus the surrounding double quotes — a complete JSON
/// string literal.
pub fn quote_json(s: &str) -> String {
    format!("\"{}\"", escape_json(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape_json("hello world"), "hello world");
        assert_eq!(quote_json("hello"), "\"hello\"");
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(quote_json("say \"hi\""), "\"say \\\"hi\\\"\"");
    }

    #[test]
    fn named_control_characters_use_short_forms() {
        assert_eq!(escape_json("a\nb\rc\td"), "a\\nb\\rc\\td");
    }

    #[test]
    fn remaining_control_characters_use_unicode_escapes() {
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("\u{1f}"), "\\u001f");
    }

    #[test]
    fn non_ascii_text_is_left_alone() {
        assert_eq!(escape_json("σ ⋈ π — ∅"), "σ ⋈ π — ∅");
    }

    #[test]
    fn escaped_output_round_trips_as_json_content() {
        // Re-parse by hand: unescape what we escaped.
        let original = "line1\nline2\t\"quoted\" \\ end\u{02}";
        let escaped = escape_json(original);
        assert!(!escaped.contains('\n'));
        assert!(!escaped.contains('\u{02}'));
        let mut restored = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                restored.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => restored.push('\n'),
                Some('r') => restored.push('\r'),
                Some('t') => restored.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let cp = u32::from_str_radix(&hex, 16).expect("hex escape");
                    restored.push(char::from_u32(cp).expect("valid codepoint"));
                }
                Some(other) => restored.push(other),
                None => panic!("dangling escape"),
            }
        }
        assert_eq!(restored, original);
    }
}
