//! The physical-plan layer: what the algebra *computes* vs how an engine
//! *realizes* it.
//!
//! A [`PhysicalPlan`] is an overlay on a logical [`Expr`]: the logical
//! tree is kept verbatim (so rewrite soundness, rendering, profiling, and
//! canonical-form arguments all keep working on the same object), and a
//! map from node paths to [`PhysChoice`]s records which physical operator
//! implements each *spine* node — `HashEquiJoin` vs `NestedLoopJoin` for
//! `rel_join`, `HashGroup` for `GRP`, `HashDistinct` for `DE`, `Scan` /
//! `IndexScan` for named objects, and `PassThrough` for everything else.
//! Because the logical tree is untouched, `eval(lower(p))` operates on a
//! plan that is structurally equal to `p`; only the *kernel* used at
//! annotated joins differs, and that kernel is proven occurrence-exact
//! below.
//!
//! # The hash equi-join kernel
//!
//! [`hash_equi_join`] buckets the right side by its key field, probes with
//! each left occurrence, and evaluates only the *residual* predicate (the
//! `COMP` conjuncts minus the equi conjunct) on in-bucket pairs:
//!
//! * **Side conditions** ([`key_pair_usable`], re-verified at run time on
//!   the materialised inputs): every element of both sides is a tuple, the
//!   key field is present and non-null on its own side and absent from the
//!   other, and all key values share one kind.  Then the equi conjunct
//!   evaluates to a definite T/F on every pair — never `unk` — so the
//!   pairs a bucket separation skips are exactly the pairs the nested
//!   loop's predicate would reject (Kleene: `F ∧ x = F` regardless of
//!   `x`).  Null (`dne`/`unk`) keys fail the guard and fall back to the
//!   nested loop, preserving three-valued semantics unconditionally.
//! * **Residual handling**: in-bucket pairs have the equi conjunct equal
//!   to `T`, and `T ∧ x = x`, so the full predicate's truth value equals
//!   the residual conjunction's, evaluated left-to-right with the serial
//!   evaluator's own `F` short-circuit.
//! * **Counters**: the kernel never evaluates the equi conjunct, so it
//!   charges strictly fewer `comparisons` than the nested loop whenever
//!   any cross-bucket pair exists; `occurrences_scanned` is charged per
//!   probed pair only — the counters report work actually done.
//!
//! One behavioural caveat, shared with the parallel engine's hash-key
//! exchange: a runtime *error* inside a residual conjunct of a
//! cross-bucket pair (which the nested loop would hit before rejecting
//! the pair) is skipped, because the pair is never formed.
//!
//! Kernels reach the evaluator through a pointer-keyed table installed in
//! [`EvalCtx`] by [`evaluate_physical`]: choices are resolved to the
//! addresses of the plan's own `rel_join` nodes, so the unchanged
//! recursive evaluator — including its trace bracketing — picks the hash
//! kernel up at exactly the annotated nodes and nowhere else.
//!
//! # Example
//!
//! The predicate helpers the kernels are built from are plain functions:
//!
//! ```
//! use excess_core::expr::{CmpOp, Expr, Pred};
//! use excess_core::physical::{conjuncts, equi_key_candidates, split_residual};
//!
//! // sadv = ename AND esal >= 2000
//! let pred = Pred::cmp(
//!     Expr::input().extract("sadv"),
//!     CmpOp::Eq,
//!     Expr::input().extract("ename"),
//! )
//! .and(Pred::cmp(Expr::input().extract("esal"), CmpOp::Ge, Expr::int(2000)));
//!
//! assert_eq!(conjuncts(&pred).len(), 2);
//! assert_eq!(
//!     equi_key_candidates(&pred),
//!     vec![("sadv".to_string(), "ename".to_string())]
//! );
//! // The hash kernel keeps only the residual conjunct: esal >= 2000.
//! assert_eq!(split_residual(&pred, "sadv", "ename").unwrap().len(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::error::EvalResult;
use crate::eval::{eval_pred, evaluate, EvalCtx};
use crate::expr::{CmpOp, Expr, Pred};
use crate::ops::predicate::Truth;
use crate::profile::NodePath;
use crate::render::op_label;
use excess_types::{MultiSet, Value};

/// A physical operator choice for one logical node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Full scan of a named top-level object.
    Scan,
    /// Scan of an extent-index object (a `…::exact::T` materialisation).
    IndexScan,
    /// Bucket the right side by `right_key`, probe with the left side's
    /// `left_key`, evaluate only the residual predicate on bucket matches.
    HashEquiJoin {
        /// Key field extracted from left-side tuples.
        left_key: String,
        /// Key field extracted from right-side tuples.
        right_key: String,
    },
    /// The serial evaluator's pair-at-a-time `rel_join` loop.
    NestedLoopJoin,
    /// `GRP` by hashing the grouping key (what both engines already do:
    /// the serial evaluator's `BTreeMap` grouping and the parallel
    /// repartition-by-key exchange).
    HashGroup,
    /// `DE` by hash-bucketing occurrences (the count-map representation).
    HashDistinct,
    /// Fused `σ`-over-extent consuming the extent's column chunk with a
    /// compiled, batched filter (see [`crate::columnar`]).
    ColumnarScan {
        /// The chunked extent the fused scan reads.
        object: String,
    },
    /// Hash equi-join whose build and probe run over the two extents'
    /// typed key columns instead of row values.
    ColumnarHashEquiJoin {
        /// Left extent name.
        left: String,
        /// Right extent name.
        right: String,
        /// Key column on the left chunk.
        left_key: String,
        /// Key column on the right chunk.
        right_key: String,
    },
    /// `GRP` keyed by one attribute column of the extent's chunk.
    ColumnarHashGroup {
        /// The chunked extent being grouped.
        object: String,
        /// The grouping attribute.
        key: String,
    },
    /// `DE` over a chunk (rows are distinct by construction).
    ColumnarHashDistinct {
        /// The chunked extent being deduplicated.
        object: String,
    },
    /// The logical operator runs as itself; no physical freedom exercised.
    PassThrough,
}

impl PhysOp {
    /// Is this one of the batched chunk-consuming operators?
    pub fn is_columnar(&self) -> bool {
        matches!(
            self,
            PhysOp::ColumnarScan { .. }
                | PhysOp::ColumnarHashEquiJoin { .. }
                | PhysOp::ColumnarHashGroup { .. }
                | PhysOp::ColumnarHashDistinct { .. }
        )
    }
}

impl fmt::Display for PhysOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysOp::Scan => write!(f, "Scan"),
            PhysOp::IndexScan => write!(f, "IndexScan"),
            PhysOp::HashEquiJoin {
                left_key,
                right_key,
            } => write!(f, "HashEquiJoin[{left_key} = {right_key}]"),
            PhysOp::NestedLoopJoin => write!(f, "NestedLoopJoin"),
            PhysOp::HashGroup => write!(f, "HashGroup"),
            PhysOp::HashDistinct => write!(f, "HashDistinct"),
            PhysOp::ColumnarScan { object } => write!(f, "ColumnarScan[{object}]"),
            PhysOp::ColumnarHashEquiJoin {
                left_key,
                right_key,
                ..
            } => write!(f, "ColumnarHashEquiJoin[{left_key} = {right_key}]"),
            PhysOp::ColumnarHashGroup { object, key } => {
                write!(f, "ColumnarHashGroup[{object} by {key}]")
            }
            PhysOp::ColumnarHashDistinct { object } => {
                write!(f, "ColumnarHashDistinct[{object}]")
            }
            PhysOp::PassThrough => write!(f, "PassThrough"),
        }
    }
}

/// One node's physical choice, with the lowering pass's reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysChoice {
    /// The chosen physical operator.
    pub op: PhysOp,
    /// Why the lowering pass picked it (statistics consulted, thresholds,
    /// refusal reasons for the safe default).
    pub why: String,
    /// Estimated output rows at this node, when statistics were available.
    pub est_rows: Option<f64>,
}

/// A lowered plan: the logical tree verbatim plus per-spine-node physical
/// operator choices keyed by node path (child indices in
/// [`Expr::children`] order, the same keying profiles and per-node cost
/// estimates use).
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The logical plan, structurally untouched by lowering.
    pub logical: Expr,
    /// Physical operator per annotated node path.
    pub choices: BTreeMap<NodePath, PhysChoice>,
    /// `HashEquiJoin` choices whose runtime [`key_pair_usable`] guard the
    /// property analysis proved redundant (keys definite on every row,
    /// attribute sets exhaustive and disjoint): the kernel skips the
    /// per-occurrence guard scan and extracts keys directly, degrading
    /// gracefully to the nested loop if a proof ever turned out wrong.
    pub elided_guards: BTreeSet<NodePath>,
}

impl PhysicalPlan {
    /// A plan with no choices: every node passes through to the logical
    /// interpreter.
    pub fn passthrough(logical: Expr) -> Self {
        PhysicalPlan {
            logical,
            choices: BTreeMap::new(),
            elided_guards: BTreeSet::new(),
        }
    }

    /// The logical node a choice path points at, if the path is valid.
    pub fn node_at(&self, path: &[usize]) -> Option<&Expr> {
        let mut node = &self.logical;
        for &i in path {
            node = node.children().into_iter().nth(i)?;
        }
        Some(node)
    }

    /// Resolve every `HashEquiJoin` choice to the address of its
    /// `rel_join` node — the pointer-keyed kernel table
    /// [`evaluate_physical`] installs in the evaluation context.  The
    /// flag marks choices whose runtime guard is elided.
    fn kernel_table(&self) -> HashMap<usize, (String, String, bool)> {
        let mut table = HashMap::new();
        for (path, choice) in &self.choices {
            // A columnar join registers the same row-hash entry: when
            // the chunk kernel refuses at runtime, the join degrades to
            // the guarded row hash kernel rather than the nested loop.
            let keys = match &choice.op {
                PhysOp::HashEquiJoin {
                    left_key,
                    right_key,
                }
                | PhysOp::ColumnarHashEquiJoin {
                    left_key,
                    right_key,
                    ..
                } => (left_key, right_key),
                _ => continue,
            };
            if let Some(node @ Expr::RelJoin { .. }) = self.node_at(path) {
                table.insert(
                    node as *const Expr as usize,
                    (
                        keys.0.clone(),
                        keys.1.clone(),
                        self.elided_guards.contains(path),
                    ),
                );
            }
        }
        table
    }

    /// Resolve every columnar choice to the address of its logical node
    /// — the batched-kernel table [`evaluate_physical`] installs
    /// alongside the row-hash table.  Choices whose node shape does not
    /// match (stale annotation) are dropped.
    fn chunk_table(&self) -> HashMap<usize, crate::columnar::ChunkKernel> {
        use crate::columnar::ChunkKernel;
        let mut table = HashMap::new();
        for (path, choice) in &self.choices {
            let Some(node) = self.node_at(path) else {
                continue;
            };
            let kernel = match (&choice.op, node) {
                (PhysOp::ColumnarScan { object }, Expr::Select { .. }) => ChunkKernel::Scan {
                    object: object.clone(),
                },
                (
                    PhysOp::ColumnarHashEquiJoin {
                        left,
                        right,
                        left_key,
                        right_key,
                    },
                    Expr::RelJoin { .. },
                ) => ChunkKernel::HashEquiJoin {
                    left: left.clone(),
                    right: right.clone(),
                    left_key: left_key.clone(),
                    right_key: right_key.clone(),
                },
                (PhysOp::ColumnarHashGroup { object, key }, Expr::Group { .. }) => {
                    ChunkKernel::Group {
                        object: object.clone(),
                        key: key.clone(),
                    }
                }
                (PhysOp::ColumnarHashDistinct { object }, Expr::DupElim(_)) => {
                    ChunkKernel::Distinct {
                        object: object.clone(),
                    }
                }
                _ => continue,
            };
            table.insert(node as *const Expr as usize, kernel);
        }
        table
    }

    /// Render the plan as an indented tree: each logical operator label,
    /// annotated with its physical choice, reasoning, and estimated rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(&self.logical, &mut Vec::new(), 0, &mut out);
        out
    }

    fn render_node(&self, e: &Expr, path: &mut NodePath, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&op_label(e));
        if let Some(c) = self.choices.get(path) {
            out.push_str(&format!("  ⇐ {}", c.op));
            if let Some(rows) = c.est_rows {
                out.push_str(&format!("  est rows≈{rows:.0}"));
            }
            if !c.why.is_empty() {
                out.push_str(&format!("  ({})", c.why));
            }
        }
        out.push('\n');
        for (i, child) in e.children().into_iter().enumerate() {
            path.push(i);
            self.render_node(child, path, depth + 1, out);
            path.pop();
        }
    }
}

/// The indices (in [`Expr::children`] order) of `e`'s children that are
/// closed in `e`'s own binder environment — the *spine* the lowering pass
/// (and the parallel driver) recurses into.  Binder bodies and predicate
/// expressions stay inside their operator.
pub fn spine_children(e: &Expr) -> Vec<usize> {
    match e {
        Expr::SetApply { .. }
        | Expr::ArrApply { .. }
        | Expr::Group { .. }
        | Expr::Select { .. }
        | Expr::ArrSelect { .. }
        | Expr::Comp { .. }
        | Expr::SetApplySwitch { .. } => vec![0],
        Expr::RelJoin { .. } => vec![0, 1],
        _ => (0..e.children().len()).collect(),
    }
}

/// Flatten a predicate's `∧`-tree into its conjuncts, left to right.
pub fn conjuncts(p: &Pred) -> Vec<&Pred> {
    fn walk<'p>(p: &'p Pred, out: &mut Vec<&'p Pred>) {
        if let Pred::And(a, b) = p {
            walk(a, out);
            walk(b, out);
        } else {
            out.push(p);
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out);
    out
}

/// The statically hashable equality conjuncts of a join predicate: every
/// `INPUT.f = INPUT.g` conjunct, as `(f, g)` field pairs.  Static shape
/// only — whether a pair actually drives a hash kernel soundly depends on
/// the data (see [`key_pair_usable`]).
pub fn equi_key_candidates(pred: &Pred) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for c in conjuncts(pred) {
        let Pred::Cmp(l, CmpOp::Eq, r) = c else {
            continue;
        };
        let (Expr::TupExtract(li, f), Expr::TupExtract(ri, g)) = (&**l, &**r) else {
            continue;
        };
        if matches!(&**li, Expr::Input(0)) && matches!(&**ri, Expr::Input(0)) {
            out.push((f.clone(), g.clone()));
        }
    }
    out
}

/// Can the field pair `(lf, rf)` soundly key a hash join of these
/// materialised inputs?  `lf` must name a non-null field present in every
/// left tuple and absent from every right tuple (and symmetrically for
/// `rf`), and all key values on both sides must share one kind.  Under
/// those conditions the equi conjunct evaluates to a definite T/F on
/// every pair — never `unk`.
pub fn key_pair_usable(left: &MultiSet, right: &MultiSet, lf: &str, rf: &str) -> bool {
    fn side_ok(s: &MultiSet, have: &str, lack: &str, kind: &mut Option<&'static str>) -> bool {
        for (v, _) in s.iter_counted() {
            let Value::Tuple(t) = v else { return false };
            let Ok(k) = t.extract(have) else { return false };
            if k.is_null() || t.extract(lack).is_ok() {
                return false;
            }
            match kind {
                Some(kd) => {
                    if *kd != k.kind_name() {
                        return false;
                    }
                }
                None => *kind = Some(k.kind_name()),
            }
        }
        true
    }
    let mut kind = None;
    side_ok(left, lf, rf, &mut kind) && side_ok(right, rf, lf, &mut kind)
}

/// Find an equality conjunct of the join predicate that can soundly drive
/// a hash-key kernel (or exchange) on these materialised inputs: the
/// first [`equi_key_candidates`] pair — in either orientation — that
/// passes [`key_pair_usable`].
pub fn usable_equi_key(pred: &Pred, left: &MultiSet, right: &MultiSet) -> Option<(String, String)> {
    for (f, g) in equi_key_candidates(pred) {
        for (lf, rf) in [(&f, &g), (&g, &f)] {
            if key_pair_usable(left, right, lf, rf) {
                return Some((lf.clone(), rf.clone()));
            }
        }
    }
    None
}

/// The residual predicate of a hash equi-join: every conjunct except the
/// first equi conjunct over exactly the key pair `{lf, rf}` (in either
/// orientation), in original left-to-right order.  `None` when the
/// predicate has no such conjunct — the kernel must then refuse.
pub fn split_residual<'p>(pred: &'p Pred, lf: &str, rf: &str) -> Option<Vec<&'p Pred>> {
    let mut residual = Vec::new();
    let mut found = false;
    for c in conjuncts(pred) {
        if !found {
            if let Pred::Cmp(l, CmpOp::Eq, r) = c {
                if let (Expr::TupExtract(li, f), Expr::TupExtract(ri, g)) = (&**l, &**r) {
                    if matches!(&**li, Expr::Input(0))
                        && matches!(&**ri, Expr::Input(0))
                        && ((f == lf && g == rf) || (f == rf && g == lf))
                    {
                        found = true;
                        continue;
                    }
                }
            }
        }
        residual.push(c);
    }
    found.then_some(residual)
}

/// The hash equi-join kernel.  Returns `Ok(None)` when the runtime guard
/// refuses the key pair (caller falls back to the nested loop), otherwise
/// the join output, occurrence-exact with the nested loop's.
///
/// See the module docs for the soundness argument; the guard re-checks
/// [`key_pair_usable`] on the materialised inputs (both orientations), so
/// correctness never depends on the statistics that suggested the kernel.
pub fn hash_equi_join(
    sa: &MultiSet,
    sb: &MultiSet,
    lf: &str,
    rf: &str,
    pred: &Pred,
    env: &mut Vec<Value>,
    ctx: &mut EvalCtx,
) -> EvalResult<Option<MultiSet>> {
    let (lf, rf) = if key_pair_usable(sa, sb, lf, rf) {
        (lf, rf)
    } else if key_pair_usable(sa, sb, rf, lf) {
        (rf, lf)
    } else {
        return Ok(None);
    };
    hash_join_core(sa, sb, lf, rf, pred, env, ctx)
}

/// The hash equi-join kernel *without* the per-occurrence
/// [`key_pair_usable`] guard scan — for joins whose key side conditions
/// the property analysis proved statically (see
/// [`PhysicalPlan::elided_guards`]).  The checks the guard performed per
/// row and the elision substitutes proofs for:
///
/// * tuple-ness, key presence, key non-nullness — still checked
///   gracefully (they fall out of the extraction the kernel does
///   anyway): a violation abandons the attempt, restores the counters it
///   touched, and reports `None` so the caller falls back to the nested
///   loop.
/// * key-field *disjointness* (`lf` absent on the right, `rf` on the
///   left, so `TUP_CAT` renames nothing) — rests entirely on the static
///   proof; the elision pass only fires on sides with exhaustive
///   attribute maps proving absence, and the soundness battery checks
///   exactly this class of claim against executed results.
pub fn hash_equi_join_unguarded(
    sa: &MultiSet,
    sb: &MultiSet,
    lf: &str,
    rf: &str,
    pred: &Pred,
    env: &mut Vec<Value>,
    ctx: &mut EvalCtx,
) -> EvalResult<Option<MultiSet>> {
    hash_join_core(sa, sb, lf, rf, pred, env, ctx)
}

/// Shared build/probe core.  Key extraction is graceful: any violation of
/// the key side conditions aborts with `Ok(None)` after restoring the
/// counters, so a guarded caller (which pre-verified and can never abort
/// here) and an unguarded caller observe identical counter behaviour to
/// the nested-loop fallback.
fn hash_join_core(
    sa: &MultiSet,
    sb: &MultiSet,
    lf: &str,
    rf: &str,
    pred: &Pred,
    env: &mut Vec<Value>,
    ctx: &mut EvalCtx,
) -> EvalResult<Option<MultiSet>> {
    let Some(residual) = split_residual(pred, lf, rf) else {
        return Ok(None);
    };
    let saved_counters = ctx.counters;
    // Build: bucket the right side by key value (BTreeMap for declarative
    // determinism; the output multiset is order-insensitive anyway).
    let mut buckets: BTreeMap<&Value, Vec<(&Value, u64)>> = BTreeMap::new();
    for (y, cy) in sb.iter_counted() {
        let Some(t) = y.as_tuple() else {
            return Ok(None);
        };
        let Ok(k) = t.extract(rf) else {
            return Ok(None);
        };
        if k.is_null() {
            return Ok(None);
        }
        buckets.entry(k).or_default().push((y, cy));
    }
    // Probe: only in-bucket pairs are ever formed.
    let mut out = MultiSet::new();
    for (x, cx) in sa.iter_counted() {
        let Some(tx) = x.as_tuple() else {
            ctx.counters = saved_counters;
            return Ok(None);
        };
        let Ok(k) = tx.extract(lf) else {
            ctx.counters = saved_counters;
            return Ok(None);
        };
        if k.is_null() {
            ctx.counters = saved_counters;
            return Ok(None);
        }
        let Some(matches) = buckets.get(k) else {
            continue;
        };
        for &(y, cy) in matches {
            let ty = y.as_tuple().expect("build side admitted tuples only");
            ctx.counters.occurrences_scanned += cx * cy;
            let joined = Value::Tuple(tx.cat(ty));
            env.push(joined.clone());
            // In-bucket the equi conjunct is T, and T ∧ x = x: the full
            // predicate's truth equals the residual conjunction's,
            // evaluated with the serial left-to-right F short-circuit.
            let mut t = Ok(Truth::T);
            for c in &residual {
                match eval_pred(c, env, ctx) {
                    Ok(Truth::F) => {
                        t = Ok(Truth::F);
                        break;
                    }
                    Ok(Truth::U) => t = Ok(Truth::U),
                    Ok(Truth::T) => {}
                    Err(e) => {
                        t = Err(e);
                        break;
                    }
                }
            }
            env.pop();
            match t? {
                Truth::T => out.insert_n(joined, cx * cy),
                Truth::U => out.insert_n(Value::unk(), cx * cy),
                Truth::F => {}
            }
        }
    }
    Ok(Some(out))
}

/// Evaluate a lowered plan: install the plan's kernel table in the
/// context, run the ordinary serial evaluator over the (unchanged)
/// logical tree, and clear the table again.  Counters, tracing, and error
/// behaviour are the evaluator's own; only annotated `rel_join` nodes
/// take the hash kernel, and only when the runtime guard admits it.
pub fn evaluate_physical(plan: &PhysicalPlan, ctx: &mut EvalCtx) -> EvalResult<Value> {
    let table = plan.kernel_table();
    let chunks = plan.chunk_table();
    let saved = ctx.join_kernels.take();
    let saved_chunks = ctx.chunk_kernels.take();
    if !table.is_empty() {
        ctx.join_kernels = Some(table);
    }
    if !chunks.is_empty() {
        ctx.chunk_kernels = Some(chunks);
    }
    let out = evaluate(&plan.logical, ctx);
    ctx.join_kernels = saved;
    ctx.chunk_kernels = saved_chunks;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use excess_types::{ObjectStore, TypeRegistry};
    use std::collections::HashMap as Cat;

    fn tuples_lr() -> (Value, Value) {
        let mut l = MultiSet::new();
        let mut r = MultiSet::new();
        for i in 0..12i32 {
            l.insert(Value::tuple([
                ("a", Value::int(i)),
                ("k", Value::int(i % 4)),
            ]));
            r.insert(Value::tuple([
                ("j", Value::int(i % 4)),
                ("b", Value::str(format!("v{i}"))),
            ]));
        }
        (Value::Set(l), Value::Set(r))
    }

    fn join_plan(pred: Pred) -> Expr {
        Expr::named("L").rel_join(Expr::named("R"), pred)
    }

    fn eq_pred() -> Pred {
        Pred::cmp(
            Expr::input().extract("k"),
            CmpOp::Eq,
            Expr::input().extract("j"),
        )
    }

    fn run(plan: &Expr, cat: &Cat<String, Value>) -> (Value, crate::counters::Counters) {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, cat);
        let v = evaluate(plan, &mut ctx).expect("eval");
        (v, ctx.counters)
    }

    fn run_physical(
        pp: &PhysicalPlan,
        cat: &Cat<String, Value>,
    ) -> (Value, crate::counters::Counters) {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, cat);
        let v = evaluate_physical(pp, &mut ctx).expect("eval physical");
        (v, ctx.counters)
    }

    fn hash_join_plan(plan: &Expr, lf: &str, rf: &str) -> PhysicalPlan {
        let mut choices = BTreeMap::new();
        choices.insert(
            Vec::new(),
            PhysChoice {
                op: PhysOp::HashEquiJoin {
                    left_key: lf.into(),
                    right_key: rf.into(),
                },
                why: "test".into(),
                est_rows: None,
            },
        );
        PhysicalPlan {
            logical: plan.clone(),
            choices,
            elided_guards: BTreeSet::new(),
        }
    }

    #[test]
    fn candidates_and_usable_key_agree_with_data() {
        let (l, r) = tuples_lr();
        let (Value::Set(sl), Value::Set(sr)) = (&l, &r) else {
            unreachable!()
        };
        let cands = equi_key_candidates(&eq_pred());
        assert_eq!(cands, vec![("k".to_string(), "j".to_string())]);
        assert_eq!(
            usable_equi_key(&eq_pred(), sl, sr),
            Some(("k".to_string(), "j".to_string()))
        );
        // Orientation flip: the candidate is written (j, k) but the data
        // says j lives on the right.
        let flipped = Pred::cmp(
            Expr::input().extract("j"),
            CmpOp::Eq,
            Expr::input().extract("k"),
        );
        assert_eq!(
            usable_equi_key(&flipped, sl, sr),
            Some(("k".to_string(), "j".to_string()))
        );
    }

    #[test]
    fn hash_kernel_matches_nested_loop_with_fewer_comparisons() {
        let (l, r) = tuples_lr();
        let mut cat = Cat::new();
        cat.insert("L".to_string(), l);
        cat.insert("R".to_string(), r);
        let plan = join_plan(eq_pred());
        let (vn, cn) = run(&plan, &cat);
        let pp = hash_join_plan(&plan, "k", "j");
        let (vh, ch) = run_physical(&pp, &cat);
        assert_eq!(vn, vh, "hash kernel must be occurrence-exact");
        assert!(
            ch.comparisons < cn.comparisons,
            "hash {} vs nested {}",
            ch.comparisons,
            cn.comparisons
        );
        // The pure equi-join's comparisons collapse to zero: the equi
        // conjunct is never evaluated and there is no residual.
        assert_eq!(ch.comparisons, 0);
    }

    #[test]
    fn residual_conjuncts_are_still_evaluated() {
        let (l, r) = tuples_lr();
        let mut cat = Cat::new();
        cat.insert("L".to_string(), l);
        cat.insert("R".to_string(), r);
        let pred = Pred::And(
            Box::new(eq_pred()),
            Box::new(Pred::cmp(
                Expr::input().extract("a"),
                CmpOp::Ge,
                Expr::int(6),
            )),
        );
        let plan = join_plan(pred);
        let (vn, cn) = run(&plan, &cat);
        let pp = hash_join_plan(&plan, "k", "j");
        let (vh, ch) = run_physical(&pp, &cat);
        assert_eq!(vn, vh);
        // Residual runs once per in-bucket pair (12·3 = 36), strictly
        // fewer than the nested loop's 2 comparisons × 144 pairs.
        assert!(ch.comparisons < cn.comparisons);
        assert_eq!(ch.comparisons, 36);
    }

    #[test]
    fn null_keys_fail_the_guard_and_fall_back() {
        let mut l = MultiSet::new();
        l.insert(Value::tuple([("k", Value::dne())]));
        l.insert(Value::tuple([("k", Value::int(1))]));
        let mut r = MultiSet::new();
        r.insert(Value::tuple([("j", Value::int(1))]));
        let mut cat = Cat::new();
        cat.insert("L".to_string(), Value::Set(l));
        cat.insert("R".to_string(), Value::Set(r));
        let plan = join_plan(eq_pred());
        let (vn, cn) = run(&plan, &cat);
        let pp = hash_join_plan(&plan, "k", "j");
        let (vh, ch) = run_physical(&pp, &cat);
        // Guard refuses (null key on the left); kernel falls back to the
        // nested loop, so values AND counters match serial exactly.
        assert_eq!(vn, vh);
        assert_eq!(cn, ch);
    }

    #[test]
    fn mixed_key_kinds_fail_the_guard() {
        // Kinds are the value *sorts* (scalar / tuple / set / …): a key
        // that is a scalar on some rows and a tuple on others cannot
        // drive a hash kernel.
        let mut l = MultiSet::new();
        l.insert(Value::tuple([("k", Value::int(1))]));
        l.insert(Value::tuple([("k", Value::tuple([("x", Value::int(2))]))]));
        let mut r = MultiSet::new();
        r.insert(Value::tuple([("j", Value::int(1))]));
        assert!(!key_pair_usable(&l, &r, "k", "j"));
        // A key absent from one left row likewise fails.
        let mut l2 = MultiSet::new();
        l2.insert(Value::tuple([("k", Value::int(1))]));
        l2.insert(Value::tuple([("other", Value::int(2))]));
        assert!(!key_pair_usable(&l2, &r, "k", "j"));
    }

    #[test]
    fn split_residual_requires_the_equi_conjunct() {
        let p = Pred::cmp(Expr::input().extract("a"), CmpOp::Ge, Expr::int(0));
        assert!(split_residual(&p, "k", "j").is_none());
        let with_eq = Pred::And(Box::new(eq_pred()), Box::new(p.clone()));
        let residual = split_residual(&with_eq, "k", "j").expect("equi conjunct present");
        assert_eq!(residual.len(), 1);
        assert_eq!(residual[0], &p);
    }

    #[test]
    fn render_annotates_choices() {
        let plan = join_plan(eq_pred());
        let pp = hash_join_plan(&plan, "k", "j");
        let s = pp.render();
        assert!(s.contains("HashEquiJoin[k = j]"), "{s}");
        assert!(s.contains('L') && s.contains('R'), "{s}");
    }

    #[test]
    fn spine_stops_at_binders() {
        let g = Expr::named("L").group_by(Expr::input().extract("k"));
        assert_eq!(spine_children(&g), vec![0]);
        let j = join_plan(eq_pred());
        assert_eq!(spine_children(&j), vec![0, 1]);
        assert_eq!(spine_children(&Expr::named("L")), Vec::<usize>::new());
    }
}
