//! Tree rendering of query plans, in the style of the paper's figures
//! (Figures 3–11 draw plans as operator trees with inputs below).

use crate::expr::{Bound, Expr, Pred};
use std::fmt::Write;

/// Render a plan as an indented operator tree.
///
/// ```
/// use excess_core::Expr;
/// let plan = excess_core::Expr::named("TopTen")
///     .arr_extract(5)
///     .deref()
///     .project(["name", "salary"]);
/// let tree = excess_core::render::render_tree(&plan);
/// assert!(tree.starts_with("π[name,salary]"));
/// assert!(tree.contains("ARR_EXTRACT[5]"));
/// # let _: &excess_core::Expr = &plan;
/// ```
pub fn render_tree(e: &Expr) -> String {
    let mut out = String::new();
    render(e, "", true, 0, &mut out);
    out
}

/// The one-line label an operator node gets in rendered trees — also the
/// node name used by profiles and EXPLAIN ANALYZE output.
pub fn op_label(e: &Expr) -> String {
    match e {
        Expr::Input(0) => "INPUT".into(),
        Expr::Input(d) => format!("INPUT^{d}"),
        Expr::Named(n) => n.clone(),
        Expr::Const(v) => {
            let s = v.to_string();
            if s.len() > 40 {
                format!(
                    "{}…",
                    &s[..s
                        .char_indices()
                        .take(40)
                        .last()
                        .map(|(i, c)| i + c.len_utf8())
                        .unwrap_or(0)]
                )
            } else {
                s
            }
        }
        Expr::AddUnion(..) => "⊎".into(),
        Expr::MakeSet(_) => "SET".into(),
        Expr::SetApply {
            only_types: None, ..
        } => "SET_APPLY".into(),
        Expr::SetApply {
            only_types: Some(ts),
            ..
        } => {
            format!("SET_APPLY[{}]", ts.join("/"))
        }
        Expr::Group { .. } => "GRP".into(),
        Expr::DupElim(_) => "DE".into(),
        Expr::Diff(..) => "−".into(),
        Expr::Cross(..) => "×".into(),
        Expr::SetCollapse(_) => "SET_COLLAPSE".into(),
        Expr::Project(_, fs) => format!("π[{}]", fs.join(",")),
        Expr::TupCat(..) => "TUP_CAT".into(),
        Expr::TupExtract(_, f) => format!("TUP_EXTRACT[{f}]"),
        Expr::MakeTup(_, f) => format!("TUP[{f}]"),
        Expr::MakeArr(_) => "ARR".into(),
        Expr::ArrExtract(_, b) => format!("ARR_EXTRACT[{}]", bound(*b)),
        Expr::ArrApply { .. } => "ARR_APPLY".into(),
        Expr::SubArr(_, m, n) => format!("SUBARR[{},{}]", bound(*m), bound(*n)),
        Expr::ArrCat(..) => "ARR_CAT".into(),
        Expr::ArrCollapse(_) => "ARR_COLLAPSE".into(),
        Expr::ArrDiff(..) => "ARR_DIFF".into(),
        Expr::ArrDupElim(_) => "ARR_DE".into(),
        Expr::ArrCross(..) => "ARR_CROSS".into(),
        Expr::MakeRef(_, t) => format!("REF[{t}]"),
        Expr::Deref(_) => "DEREF".into(),
        Expr::Comp { pred, .. } => format!("COMP[{}]", pred_label(pred)),
        Expr::Call(f, _) => f.to_string(),
        Expr::Union(..) => "∪".into(),
        Expr::Intersect(..) => "∩".into(),
        Expr::Select { pred, .. } => format!("σ[{}]", pred_label(pred)),
        Expr::ArrSelect { pred, .. } => format!("arr_σ[{}]", pred_label(pred)),
        Expr::RelJoin { pred, .. } => format!("rel_join[{}]", pred_label(pred)),
        Expr::RelCross(..) => "rel_×".into(),
        Expr::SetApplySwitch { table, .. } => {
            let arms: Vec<&str> = table.iter().map(|(t, _)| t.as_str()).collect();
            format!("SWITCH[{}]", arms.join("/"))
        }
    }
}

fn pred_label(p: &Pred) -> String {
    let s = p.to_string();
    if s.len() > 48 {
        let cut = s
            .char_indices()
            .take(48)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(0);
        format!("{}…", &s[..cut])
    } else {
        s
    }
}

fn bound(b: Bound) -> String {
    match b {
        Bound::At(n) => n.to_string(),
        Bound::Last => "last".into(),
    }
}

fn render(e: &Expr, prefix: &str, last: bool, depth: usize, out: &mut String) {
    let connector = if depth == 0 {
        ""
    } else if last {
        "└─ "
    } else {
        "├─ "
    };
    let _ = writeln!(out, "{prefix}{connector}{}", op_label(e));
    let kids = e.children();
    let child_prefix = if depth == 0 {
        String::new()
    } else {
        format!("{prefix}{}", if last { "   " } else { "│  " })
    };
    for (i, c) in kids.iter().enumerate() {
        render(c, &child_prefix, i == kids.len() - 1, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Pred};

    #[test]
    fn renders_figure3_like_tree() {
        let plan = Expr::named("TopTen")
            .arr_extract(5)
            .deref()
            .project(["name", "salary"]);
        let t = render_tree(&plan);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "π[name,salary]");
        assert!(lines[1].contains("DEREF"));
        assert!(lines[2].contains("ARR_EXTRACT[5]"));
        assert!(lines[3].contains("TopTen"));
    }

    #[test]
    fn renders_branching_plans() {
        let plan = Expr::named("A").rel_join(
            Expr::named("B"),
            Pred::cmp(Expr::input().extract("x"), CmpOp::Eq, Expr::int(1)),
        );
        let t = render_tree(&plan);
        assert!(t.contains("rel_join"));
        assert!(t.contains("├─"));
        assert!(t.contains("└─"));
        assert!(t.contains('A') && t.contains('B'));
    }

    #[test]
    fn long_predicates_are_clipped() {
        let long = Pred::cmp(
            Expr::input().extract("averyveryverylongfieldnameindeed"),
            CmpOp::Eq,
            Expr::str("a-quite-long-string-constant-here"),
        );
        let t = render_tree(&Expr::named("A").select(long));
        assert!(t.lines().next().unwrap().ends_with('…') || t.len() < 200);
    }
}
