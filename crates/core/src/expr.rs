//! The algebra expression AST.
//!
//! An algebraic query is an expression tree whose leaves are named
//! top-level database objects, constants, or `INPUT` occurrences, and whose
//! interior nodes are the operators of Section 3.2.  The paper writes
//! `INPUT` informally ("the symbol INPUT refers, in turn, to each
//! occurrence in the input multiset"); we make the scoping precise with a
//! De Bruijn index: `Input(0)` is the value bound by the nearest enclosing
//! *binder*, `Input(1)` the next one out, and so on.  The binders are
//! `SET_APPLY`/`ARR_APPLY` (bind each occurrence/element) and `COMP` and
//! `GRP` (bind their whole input / each occurrence, respectively).
//!
//! Derived operators (Appendix §1) are first-class AST nodes so that
//! transformation rules 3, 4, 5, and 10 can pattern-match them directly;
//! [`Expr::expand_derived`] rewrites any derived node into primitives,
//! witnessing the Appendix derivations.

use excess_types::Value;
use std::fmt;

/// A 1-based array bound: an index or the token `last` (Section 3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// A concrete 1-based index.
    At(usize),
    /// "the current last element of the array".
    Last,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::At(n) => write!(f, "{n}"),
            Bound::Last => f.write_str("last"),
        }
    }
}

/// Comparators available to `COMP` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Value equality (the algebra's single equality, Section 3.2.4).
    Eq,
    /// Negated equality.
    Ne,
    /// Less-than over the total value order.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Multiset membership — "conceptually an equality test against every
    /// occurrence in a multiset".
    In,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
        })
    }
}

/// A predicate: "atomic equality predicates connected by ∧ and ¬"
/// (Section 3.2.4), evaluated in three-valued logic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// An atomic comparison between two expressions (each may mention
    /// `INPUT`, bound to the COMP input).
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction (Kleene three-valued ∧).
    And(Box<Pred>, Box<Pred>),
    /// Negation (Kleene three-valued ¬).
    Not(Box<Pred>),
}

impl Pred {
    /// Atomic comparison.
    pub fn cmp(l: Expr, op: CmpOp, r: Expr) -> Pred {
        Pred::Cmp(Box::new(l), op, Box::new(r))
    }
    /// Equality shorthand.
    pub fn eq(l: Expr, r: Expr) -> Pred {
        Pred::cmp(l, CmpOp::Eq, r)
    }
    /// Conjunction shorthand.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }
    /// Negation shorthand (the paper's ¬ — intentionally not `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Immutable references to the expressions inside this predicate tree.
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Pred::Cmp(l, _, r) => vec![l, r],
            Pred::And(a, b) => {
                let mut v = a.exprs();
                v.extend(b.exprs());
                v
            }
            Pred::Not(p) => p.exprs(),
        }
    }

    /// Rebuild this predicate with `f` applied to every embedded expression.
    pub fn map_exprs(&self, f: &mut impl FnMut(&Expr) -> Expr) -> Pred {
        match self {
            Pred::Cmp(l, op, r) => Pred::Cmp(Box::new(f(l)), *op, Box::new(f(r))),
            Pred::And(a, b) => Pred::And(Box::new(a.map_exprs(f)), Box::new(b.map_exprs(f))),
            Pred::Not(p) => Pred::Not(Box::new(p.map_exprs(f))),
        }
    }
}

/// Built-in scalar functions and aggregates — the stand-in for EXTRA's
/// ADT functions written in the E language (see DESIGN.md substitutions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division.
    Div,
    /// Numeric negation.
    Neg,
    /// Aggregate: minimum of a multiset of scalars (`dne` on empty input).
    Min,
    /// Aggregate: maximum (`dne` on empty input).
    Max,
    /// Aggregate: occurrence count (0 on empty input).
    Count,
    /// Aggregate: numeric sum (0 on empty input).
    Sum,
    /// Aggregate: numeric average (`dne` on empty input).
    Avg,
    /// Virtual field: age of a `Date` relative to the context's `today`.
    Age,
    /// `the(S)`: the sole occurrence of a singleton multiset (`dne` when
    /// empty; the least element when, abnormally, there are several).
    /// This is how EXCESS expresses a bare `COMP`: `COMP_P(A)` ≡
    /// `the(σ_P({A}))` — see the decompiler.
    The,
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Func::Add => "add",
            Func::Sub => "sub",
            Func::Mul => "mul",
            Func::Div => "div",
            Func::Neg => "neg",
            Func::Min => "min",
            Func::Max => "max",
            Func::Count => "count",
            Func::Sum => "sum",
            Func::Avg => "avg",
            Func::Age => "age",
            Func::The => "the",
        })
    }
}

/// An expression of the EXCESS algebra.
///
/// "An expression in the algebra consists of one or more named, top-level
/// database objects and 0 or more operators." (Section 3.4)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    // ----- leaves -----
    /// `INPUT` at the given binder depth (0 = innermost).
    Input(usize),
    /// A named, top-level database object.
    Named(String),
    /// A literal value.
    Const(Value),

    // ----- multiset operators (§3.2.1) -----
    /// Additive union `A ⊎ B` (cardinalities sum).
    AddUnion(Box<Expr>, Box<Expr>),
    /// `SET(A)`: the singleton multiset `{A}`.
    MakeSet(Box<Expr>),
    /// `SET_APPLY_E(A)`, optionally restricted to elements whose exact type
    /// is in `only_types` — the Section 4 variant: "T indicates that only
    /// objects that are exactly of type T are to be processed".  A list is
    /// allowed so one SET_APPLY can serve "Person/Student" when Student
    /// does not override the method ("only as many SET_APPLYs as there are
    /// distinct method implementations"); by convention the first name is
    /// the type that *owns* the implementation.
    SetApply {
        /// The multiset input.
        input: Box<Expr>,
        /// The expression applied to each occurrence (binds `Input(0)`).
        body: Box<Expr>,
        /// Optional exact-type filter (Section 4).
        only_types: Option<Vec<String>>,
    },
    /// `GRP_E(A)`: partition into equivalence classes by the value of `by`
    /// on each occurrence (binds `Input(0)`).
    Group {
        /// The multiset input.
        input: Box<Expr>,
        /// The grouping expression.
        by: Box<Expr>,
    },
    /// `DE(A)`: duplicate elimination.
    DupElim(Box<Expr>),
    /// `A − B`: cardinality difference.
    Diff(Box<Expr>, Box<Expr>),
    /// `A × B`: duplicate-preserving Cartesian product of `(fst, snd)`
    /// pairs.
    Cross(Box<Expr>, Box<Expr>),
    /// `SET_COLLAPSE(A)`: ⊎ of a multiset of multisets.
    SetCollapse(Box<Expr>),

    // ----- tuple operators (§3.2.2) -----
    /// `π_L(A)`: projection of a single tuple onto the named fields.
    Project(Box<Expr>, Vec<String>),
    /// `TUP_CAT(A, B)`: tuple concatenation.
    TupCat(Box<Expr>, Box<Expr>),
    /// `TUP_EXTRACT_f(A)`: one field of a tuple, as a structure.
    TupExtract(Box<Expr>, String),
    /// `TUP(A)`: the unary tuple with the given field name.
    MakeTup(Box<Expr>, String),

    // ----- array operators (§3.2.3) -----
    /// `ARR(A)`: the 1-element array `[A]`.
    MakeArr(Box<Expr>),
    /// `ARR_EXTRACT_n(A)`: the n-th element itself (not a subarray).
    ArrExtract(Box<Expr>, Bound),
    /// `ARR_APPLY_E(A)`: order-preserving map (binds `Input(0)`).
    ArrApply {
        /// The array input.
        input: Box<Expr>,
        /// The expression applied to each element.
        body: Box<Expr>,
    },
    /// `SUBARR_{m,n}(A)`: elements m..n inclusive, in order.
    SubArr(Box<Expr>, Bound, Bound),
    /// `ARR_CAT(A, B)`: array concatenation.
    ArrCat(Box<Expr>, Box<Expr>),
    /// `ARR_COLLAPSE(A)`: order-preserving flatten of an array of arrays.
    ArrCollapse(Box<Expr>),
    /// `ARR_DIFF(A, B)`: order-preserving analog of `−`.
    ArrDiff(Box<Expr>, Box<Expr>),
    /// `ARR_DE(A)`: order-preserving duplicate elimination (first
    /// occurrence kept).
    ArrDupElim(Box<Expr>),
    /// `ARR_CROSS(A, B)`: order-preserving analog of `×`.
    ArrCross(Box<Expr>, Box<Expr>),

    // ----- reference operators (§3.2.4) -----
    /// `REF(A)`: mint a new object of the named type holding `A`'s value
    /// and return a reference to it.
    MakeRef(Box<Expr>, String),
    /// `DEREF(A)`: materialise the referenced object.
    Deref(Box<Expr>),

    // ----- predicates (§3.2.4) -----
    /// `COMP_P(A)`: returns `A` when `P` is true, `unk` when unknown,
    /// `dne` when false.  Binds `Input(0)` to the whole input inside `P`.
    Comp {
        /// The input structure.
        input: Box<Expr>,
        /// The predicate.
        pred: Pred,
    },

    // ----- scalar functions / aggregates -----
    /// Application of a built-in function.
    Call(Func, Vec<Expr>),

    // ----- derived operators (Appendix §1) -----
    /// `A ∪ B` (max of cardinalities); derivation `(A − B) ⊎ B`.
    Union(Box<Expr>, Box<Expr>),
    /// `A ∩ B` (min of cardinalities); derivation `A − (A − B)`.
    Intersect(Box<Expr>, Box<Expr>),
    /// Multiset selection `σ_P(A)`; derivation `SET_APPLY_{COMP_P}(A)`.
    Select {
        /// The multiset input.
        input: Box<Expr>,
        /// The selection predicate (binds `Input(0)` per occurrence).
        pred: Pred,
    },
    /// Array selection; derivation `ARR_APPLY_{COMP_P}(A)`.
    ArrSelect {
        /// The array input.
        input: Box<Expr>,
        /// The selection predicate.
        pred: Pred,
    },
    /// `rel_join_Θ(A, B)`: relational-like theta join producing
    /// concatenated tuples.
    RelJoin {
        /// Left multiset of tuples.
        left: Box<Expr>,
        /// Right multiset of tuples.
        right: Box<Expr>,
        /// The join predicate, evaluated on the concatenated tuple.
        pred: Pred,
    },
    /// `rel_×(A, B)`: Cartesian product with concatenated (flat) tuples.
    RelCross(Box<Expr>, Box<Expr>),

    // ----- Section 4: run-time method dispatch -----
    /// The switch-table variant of `SET_APPLY`: "a switch table that,
    /// given a type, returns a pointer to the appropriate query tree to
    /// invoke".  Each arm maps an exact type name to a body; an element
    /// whose exact type has no arm uses the arm of its nearest ancestor.
    SetApplySwitch {
        /// The multiset input.
        input: Box<Expr>,
        /// `(type name, body)` arms.
        table: Vec<(String, Expr)>,
    },
}

impl Expr {
    // ----- ergonomic constructors -----

    /// `INPUT` of the innermost binder.
    pub fn input() -> Expr {
        Expr::Input(0)
    }
    /// `INPUT` at an outer binder depth.
    pub fn input_at(depth: usize) -> Expr {
        Expr::Input(depth)
    }
    /// A named top-level object.
    pub fn named(n: impl Into<String>) -> Expr {
        Expr::Named(n.into())
    }
    /// A literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Const(v)
    }
    /// Integer literal.
    pub fn int(i: i32) -> Expr {
        Expr::Const(Value::int(i))
    }
    /// String literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Const(Value::str(s))
    }

    /// `SET_APPLY_body(self)`.
    pub fn set_apply(self, body: Expr) -> Expr {
        Expr::SetApply {
            input: Box::new(self),
            body: Box::new(body),
            only_types: None,
        }
    }
    /// `SET_APPLY` restricted to a set of exact types (Section 4); the
    /// first name is the implementation's owning type.
    pub fn set_apply_only<I, S>(self, tys: I, body: Expr) -> Expr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Expr::SetApply {
            input: Box::new(self),
            body: Box::new(body),
            only_types: Some(tys.into_iter().map(Into::into).collect()),
        }
    }
    /// `ARR_APPLY_body(self)`.
    pub fn arr_apply(self, body: Expr) -> Expr {
        Expr::ArrApply {
            input: Box::new(self),
            body: Box::new(body),
        }
    }
    /// `GRP_by(self)`.
    pub fn group_by(self, by: Expr) -> Expr {
        Expr::Group {
            input: Box::new(self),
            by: Box::new(by),
        }
    }
    /// `DE(self)`.
    pub fn dup_elim(self) -> Expr {
        Expr::DupElim(Box::new(self))
    }
    /// `self ⊎ other`.
    pub fn add_union(self, other: Expr) -> Expr {
        Expr::AddUnion(Box::new(self), Box::new(other))
    }
    /// `self − other`.
    pub fn diff(self, other: Expr) -> Expr {
        Expr::Diff(Box::new(self), Box::new(other))
    }
    /// `self × other`.
    pub fn cross(self, other: Expr) -> Expr {
        Expr::Cross(Box::new(self), Box::new(other))
    }
    /// `SET_COLLAPSE(self)`.
    pub fn set_collapse(self) -> Expr {
        Expr::SetCollapse(Box::new(self))
    }
    /// `SET(self)`.
    pub fn make_set(self) -> Expr {
        Expr::MakeSet(Box::new(self))
    }
    /// `π_fields(self)`.
    pub fn project<I, S>(self, fields: I) -> Expr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Expr::Project(Box::new(self), fields.into_iter().map(Into::into).collect())
    }
    /// `TUP_EXTRACT_field(self)`.
    pub fn extract(self, field: impl Into<String>) -> Expr {
        Expr::TupExtract(Box::new(self), field.into())
    }
    /// `TUP_CAT(self, other)`.
    pub fn tup_cat(self, other: Expr) -> Expr {
        Expr::TupCat(Box::new(self), Box::new(other))
    }
    /// `TUP(self)` with a field name.
    pub fn make_tup(self, field: impl Into<String>) -> Expr {
        Expr::MakeTup(Box::new(self), field.into())
    }
    /// `ARR(self)`.
    pub fn make_arr(self) -> Expr {
        Expr::MakeArr(Box::new(self))
    }
    /// `ARR_EXTRACT_n(self)` with a 1-based index.
    pub fn arr_extract(self, n: usize) -> Expr {
        Expr::ArrExtract(Box::new(self), Bound::At(n))
    }
    /// `SUBARR_{m,n}(self)`.
    pub fn subarr(self, m: Bound, n: Bound) -> Expr {
        Expr::SubArr(Box::new(self), m, n)
    }
    /// `ARR_CAT(self, other)`.
    pub fn arr_cat(self, other: Expr) -> Expr {
        Expr::ArrCat(Box::new(self), Box::new(other))
    }
    /// `DEREF(self)`.
    pub fn deref(self) -> Expr {
        Expr::Deref(Box::new(self))
    }
    /// `REF(self)` minting into the named type.
    pub fn make_ref(self, ty: impl Into<String>) -> Expr {
        Expr::MakeRef(Box::new(self), ty.into())
    }
    /// `COMP_pred(self)`.
    pub fn comp(self, pred: Pred) -> Expr {
        Expr::Comp {
            input: Box::new(self),
            pred,
        }
    }
    /// Derived `σ_pred(self)`.
    pub fn select(self, pred: Pred) -> Expr {
        Expr::Select {
            input: Box::new(self),
            pred,
        }
    }
    /// Derived `rel_join_pred(self, other)`.
    pub fn rel_join(self, other: Expr, pred: Pred) -> Expr {
        Expr::RelJoin {
            left: Box::new(self),
            right: Box::new(other),
            pred,
        }
    }
    /// Derived `rel_×(self, other)`.
    pub fn rel_cross(self, other: Expr) -> Expr {
        Expr::RelCross(Box::new(self), Box::new(other))
    }
    /// Aggregate/function call.
    pub fn call(f: Func, args: Vec<Expr>) -> Expr {
        Expr::Call(f, args)
    }

    /// Expand a *derived* node one step into primitives, per the Appendix
    /// §1 derivations.  Returns `None` for primitive nodes.
    pub fn expand_derived(&self) -> Option<Expr> {
        Some(match self {
            // A ∪ B = (A − B) ⊎ B
            Expr::Union(a, b) => a
                .as_ref()
                .clone()
                .diff((**b).clone())
                .add_union((**b).clone()),
            // A ∩ B = A − (A − B)
            Expr::Intersect(a, b) => a
                .as_ref()
                .clone()
                .diff(a.as_ref().clone().diff((**b).clone())),
            // σ_P(A) = SET_APPLY_{COMP_P(INPUT)}(A)
            Expr::Select { input, pred } => input
                .as_ref()
                .clone()
                .set_apply(Expr::input().comp(pred.clone())),
            // array σ_P(A) = ARR_APPLY_{COMP_P(INPUT)}(A)
            Expr::ArrSelect { input, pred } => input
                .as_ref()
                .clone()
                .arr_apply(Expr::input().comp(pred.clone())),
            // rel_×(A,B) = SET_APPLY_{TUP_CAT(fst, snd)}(A × B)
            Expr::RelCross(a, b) => a.as_ref().clone().cross((**b).clone()).set_apply(
                Expr::input()
                    .extract("fst")
                    .tup_cat(Expr::input().extract("snd")),
            ),
            // rel_join_Θ(A,B) = SET_APPLY_{COMP_Θ}(rel_×(A,B)) — the paper
            // phrases it as SET_APPLY∘SET_APPLY over ×; we expand through
            // rel_× for clarity, which is the same tree after one more step.
            Expr::RelJoin { left, right, pred } => Expr::Select {
                input: Box::new(left.as_ref().clone().rel_cross((**right).clone())),
                pred: pred.clone(),
            },
            _ => return None,
        })
    }

    /// Fully expand every derived operator, bottom-up, leaving only the 23
    /// primitive operators.
    pub fn desugar(&self) -> Expr {
        let e = self.map_children(&mut |c| c.desugar());
        match e.expand_derived() {
            Some(expanded) => expanded.desugar(),
            None => e,
        }
    }

    /// Immutable references to direct child expressions (including those
    /// inside predicates).
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Input(_) | Expr::Named(_) | Expr::Const(_) => vec![],
            Expr::AddUnion(a, b)
            | Expr::Diff(a, b)
            | Expr::Cross(a, b)
            | Expr::TupCat(a, b)
            | Expr::ArrCat(a, b)
            | Expr::ArrDiff(a, b)
            | Expr::ArrCross(a, b)
            | Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::RelCross(a, b) => vec![a, b],
            Expr::MakeSet(a)
            | Expr::DupElim(a)
            | Expr::SetCollapse(a)
            | Expr::Project(a, _)
            | Expr::TupExtract(a, _)
            | Expr::MakeTup(a, _)
            | Expr::MakeArr(a)
            | Expr::ArrExtract(a, _)
            | Expr::SubArr(a, _, _)
            | Expr::ArrCollapse(a)
            | Expr::ArrDupElim(a)
            | Expr::MakeRef(a, _)
            | Expr::Deref(a) => vec![a],
            Expr::SetApply { input, body, .. } => vec![input, body],
            Expr::ArrApply { input, body } => vec![input, body],
            Expr::Group { input, by } => vec![input, by],
            Expr::Comp { input, pred } => {
                let mut v: Vec<&Expr> = vec![input];
                v.extend(pred.exprs());
                v
            }
            Expr::Select { input, pred } | Expr::ArrSelect { input, pred } => {
                let mut v: Vec<&Expr> = vec![input];
                v.extend(pred.exprs());
                v
            }
            Expr::RelJoin { left, right, pred } => {
                let mut v: Vec<&Expr> = vec![left, right];
                v.extend(pred.exprs());
                v
            }
            Expr::Call(_, args) => args.iter().collect(),
            Expr::SetApplySwitch { input, table } => {
                let mut v: Vec<&Expr> = vec![input];
                v.extend(table.iter().map(|(_, e)| e));
                v
            }
        }
    }

    /// Rebuild this node with `f` applied to each direct child (including
    /// expressions inside predicates).
    pub fn map_children(&self, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
        let fb = |e: &Expr, f: &mut dyn FnMut(&Expr) -> Expr| Box::new(f(e));
        match self {
            Expr::Input(_) | Expr::Named(_) | Expr::Const(_) => self.clone(),
            Expr::AddUnion(a, b) => Expr::AddUnion(fb(a, f), fb(b, f)),
            Expr::Diff(a, b) => Expr::Diff(fb(a, f), fb(b, f)),
            Expr::Cross(a, b) => Expr::Cross(fb(a, f), fb(b, f)),
            Expr::TupCat(a, b) => Expr::TupCat(fb(a, f), fb(b, f)),
            Expr::ArrCat(a, b) => Expr::ArrCat(fb(a, f), fb(b, f)),
            Expr::ArrDiff(a, b) => Expr::ArrDiff(fb(a, f), fb(b, f)),
            Expr::ArrCross(a, b) => Expr::ArrCross(fb(a, f), fb(b, f)),
            Expr::Union(a, b) => Expr::Union(fb(a, f), fb(b, f)),
            Expr::Intersect(a, b) => Expr::Intersect(fb(a, f), fb(b, f)),
            Expr::RelCross(a, b) => Expr::RelCross(fb(a, f), fb(b, f)),
            Expr::MakeSet(a) => Expr::MakeSet(fb(a, f)),
            Expr::DupElim(a) => Expr::DupElim(fb(a, f)),
            Expr::SetCollapse(a) => Expr::SetCollapse(fb(a, f)),
            Expr::Project(a, l) => Expr::Project(fb(a, f), l.clone()),
            Expr::TupExtract(a, s) => Expr::TupExtract(fb(a, f), s.clone()),
            Expr::MakeTup(a, s) => Expr::MakeTup(fb(a, f), s.clone()),
            Expr::MakeArr(a) => Expr::MakeArr(fb(a, f)),
            Expr::ArrExtract(a, n) => Expr::ArrExtract(fb(a, f), *n),
            Expr::SubArr(a, m, n) => Expr::SubArr(fb(a, f), *m, *n),
            Expr::ArrCollapse(a) => Expr::ArrCollapse(fb(a, f)),
            Expr::ArrDupElim(a) => Expr::ArrDupElim(fb(a, f)),
            Expr::MakeRef(a, t) => Expr::MakeRef(fb(a, f), t.clone()),
            Expr::Deref(a) => Expr::Deref(fb(a, f)),
            Expr::SetApply {
                input,
                body,
                only_types,
            } => Expr::SetApply {
                input: fb(input, f),
                body: fb(body, f),
                only_types: only_types.clone(),
            },
            Expr::ArrApply { input, body } => Expr::ArrApply {
                input: fb(input, f),
                body: fb(body, f),
            },
            Expr::Group { input, by } => Expr::Group {
                input: fb(input, f),
                by: fb(by, f),
            },
            Expr::Comp { input, pred } => Expr::Comp {
                input: fb(input, f),
                pred: pred.map_exprs(f),
            },
            Expr::Select { input, pred } => Expr::Select {
                input: fb(input, f),
                pred: pred.map_exprs(f),
            },
            Expr::ArrSelect { input, pred } => Expr::ArrSelect {
                input: fb(input, f),
                pred: pred.map_exprs(f),
            },
            Expr::RelJoin { left, right, pred } => Expr::RelJoin {
                left: fb(left, f),
                right: fb(right, f),
                pred: pred.map_exprs(f),
            },
            Expr::Call(func, args) => Expr::Call(*func, args.iter().map(&mut *f).collect()),
            Expr::SetApplySwitch { input, table } => Expr::SetApplySwitch {
                input: fb(input, f),
                table: table.iter().map(|(t, e)| (t.clone(), f(e))).collect(),
            },
        }
    }

    /// Does this subtree contain a `REF` (OID-minting) node?  Used by the
    /// evaluator and optimizer to decide when expression duplication or
    /// re-ordering is observable.
    pub fn mints_oids(&self) -> bool {
        matches!(self, Expr::MakeRef(..)) || self.children().iter().any(|c| c.mints_oids())
    }

    /// Number of operator nodes (leaves count 0) — the induction measure
    /// used in the equipollence proof.
    pub fn operator_count(&self) -> usize {
        let me = match self {
            Expr::Input(_) | Expr::Named(_) | Expr::Const(_) => 0,
            _ => 1,
        };
        me + self
            .children()
            .iter()
            .map(|c| c.operator_count())
            .sum::<usize>()
    }

    /// Does the expression mention `Input(depth)` free (i.e. escaping all
    /// its internal binders)?
    pub fn mentions_input(&self, depth: usize) -> bool {
        match self {
            Expr::Input(d) => *d == depth,
            Expr::SetApply { input, body, .. }
            | Expr::ArrApply { input, body }
            | Expr::Group { input, by: body } => {
                input.mentions_input(depth) || body.mentions_input(depth + 1)
            }
            Expr::Comp { input, pred } => {
                input.mentions_input(depth)
                    || pred.exprs().iter().any(|e| e.mentions_input(depth + 1))
            }
            Expr::Select { input, pred } | Expr::ArrSelect { input, pred } => {
                input.mentions_input(depth)
                    || pred.exprs().iter().any(|e| e.mentions_input(depth + 1))
            }
            Expr::RelJoin { left, right, pred } => {
                left.mentions_input(depth)
                    || right.mentions_input(depth)
                    || pred.exprs().iter().any(|e| e.mentions_input(depth + 1))
            }
            Expr::SetApplySwitch { input, table } => {
                input.mentions_input(depth)
                    || table.iter().any(|(_, e)| e.mentions_input(depth + 1))
            }
            _ => self.children().iter().any(|c| c.mentions_input(depth)),
        }
    }

    /// Shift every free `Input` index ≥ `cutoff` by `delta` (standard De
    /// Bruijn shifting, needed when moving an expression under or out of a
    /// binder).
    pub fn shift_inputs(&self, cutoff: usize, delta: isize) -> Expr {
        match self {
            Expr::Input(d) if *d >= cutoff => Expr::Input((*d as isize + delta).max(0) as usize),
            Expr::Input(_) | Expr::Named(_) | Expr::Const(_) => self.clone(),
            Expr::SetApply {
                input,
                body,
                only_types,
            } => Expr::SetApply {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                body: Box::new(body.shift_inputs(cutoff + 1, delta)),
                only_types: only_types.clone(),
            },
            Expr::ArrApply { input, body } => Expr::ArrApply {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                body: Box::new(body.shift_inputs(cutoff + 1, delta)),
            },
            Expr::Group { input, by } => Expr::Group {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                by: Box::new(by.shift_inputs(cutoff + 1, delta)),
            },
            Expr::Comp { input, pred } => Expr::Comp {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                pred: pred.map_exprs(&mut |e| e.shift_inputs(cutoff + 1, delta)),
            },
            Expr::Select { input, pred } => Expr::Select {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                pred: pred.map_exprs(&mut |e| e.shift_inputs(cutoff + 1, delta)),
            },
            Expr::ArrSelect { input, pred } => Expr::ArrSelect {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                pred: pred.map_exprs(&mut |e| e.shift_inputs(cutoff + 1, delta)),
            },
            Expr::RelJoin { left, right, pred } => Expr::RelJoin {
                left: Box::new(left.shift_inputs(cutoff, delta)),
                right: Box::new(right.shift_inputs(cutoff, delta)),
                pred: pred.map_exprs(&mut |e| e.shift_inputs(cutoff + 1, delta)),
            },
            Expr::SetApplySwitch { input, table } => Expr::SetApplySwitch {
                input: Box::new(input.shift_inputs(cutoff, delta)),
                table: table
                    .iter()
                    .map(|(t, e)| (t.clone(), e.shift_inputs(cutoff + 1, delta)))
                    .collect(),
            },
            _ => self.map_children(&mut |c| c.shift_inputs(cutoff, delta)),
        }
    }

    /// β-reduce a binder body against a concrete argument: `Input(0)` is
    /// replaced by `arg` and the (now removed) binder's other indices shift
    /// down by one.  This is what rules 19 and 26 mean by "E applied to
    /// ARR_EXTRACT_n(A)" — the body of an APPLY used outside its binder.
    pub fn beta_apply(body: &Expr, arg: &Expr) -> Expr {
        body.substitute_input(0, &arg.shift_inputs(0, 1))
            .shift_inputs(1, -1)
    }

    /// Substitute `replacement` for `Input(depth)` (used by rule 15,
    /// "combine successive SET_APPLYs": the inner body is substituted for
    /// INPUT in the outer body).
    pub fn substitute_input(&self, depth: usize, replacement: &Expr) -> Expr {
        match self {
            Expr::Input(d) if *d == depth => replacement.clone(),
            Expr::Input(_) | Expr::Named(_) | Expr::Const(_) => self.clone(),
            Expr::SetApply {
                input,
                body,
                only_types,
            } => Expr::SetApply {
                input: Box::new(input.substitute_input(depth, replacement)),
                body: Box::new(body.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))),
                only_types: only_types.clone(),
            },
            Expr::ArrApply { input, body } => Expr::ArrApply {
                input: Box::new(input.substitute_input(depth, replacement)),
                body: Box::new(body.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))),
            },
            Expr::Group { input, by } => Expr::Group {
                input: Box::new(input.substitute_input(depth, replacement)),
                by: Box::new(by.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))),
            },
            Expr::Comp { input, pred } => Expr::Comp {
                input: Box::new(input.substitute_input(depth, replacement)),
                pred: pred.map_exprs(&mut |e| {
                    e.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))
                }),
            },
            Expr::Select { input, pred } => Expr::Select {
                input: Box::new(input.substitute_input(depth, replacement)),
                pred: pred.map_exprs(&mut |e| {
                    e.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))
                }),
            },
            Expr::ArrSelect { input, pred } => Expr::ArrSelect {
                input: Box::new(input.substitute_input(depth, replacement)),
                pred: pred.map_exprs(&mut |e| {
                    e.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))
                }),
            },
            Expr::RelJoin { left, right, pred } => Expr::RelJoin {
                left: Box::new(left.substitute_input(depth, replacement)),
                right: Box::new(right.substitute_input(depth, replacement)),
                pred: pred.map_exprs(&mut |e| {
                    e.substitute_input(depth + 1, &replacement.shift_inputs(0, 1))
                }),
            },
            Expr::SetApplySwitch { input, table } => Expr::SetApplySwitch {
                input: Box::new(input.substitute_input(depth, replacement)),
                table: table
                    .iter()
                    .map(|(t, e)| {
                        (
                            t.clone(),
                            e.substitute_input(depth + 1, &replacement.shift_inputs(0, 1)),
                        )
                    })
                    .collect(),
            },
            _ => self.map_children(&mut |c| c.substitute_input(depth, replacement)),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Pred::And(a, b) => write!(f, "({a} ∧ {b})"),
            Pred::Not(p) => write!(f, "¬({p})"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Input(0) => f.write_str("INPUT"),
            Expr::Input(d) => write!(f, "INPUT^{d}"),
            Expr::Named(n) => f.write_str(n),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::AddUnion(a, b) => write!(f, "({a} ⊎ {b})"),
            Expr::MakeSet(a) => write!(f, "SET({a})"),
            Expr::SetApply {
                input,
                body,
                only_types: None,
            } => {
                write!(f, "SET_APPLY[{body}]({input})")
            }
            Expr::SetApply {
                input,
                body,
                only_types: Some(ts),
            } => {
                write!(f, "SET_APPLY[{}; {body}]({input})", ts.join("/"))
            }
            Expr::Group { input, by } => write!(f, "GRP[{by}]({input})"),
            Expr::DupElim(a) => write!(f, "DE({a})"),
            Expr::Diff(a, b) => write!(f, "({a} − {b})"),
            Expr::Cross(a, b) => write!(f, "({a} × {b})"),
            Expr::SetCollapse(a) => write!(f, "SET_COLLAPSE({a})"),
            Expr::Project(a, fs) => write!(f, "π[{}]({a})", fs.join(",")),
            Expr::TupCat(a, b) => write!(f, "TUP_CAT({a}, {b})"),
            Expr::TupExtract(a, s) => write!(f, "TUP_EXTRACT[{s}]({a})"),
            Expr::MakeTup(a, s) => write!(f, "TUP[{s}]({a})"),
            Expr::MakeArr(a) => write!(f, "ARR({a})"),
            Expr::ArrExtract(a, n) => write!(f, "ARR_EXTRACT[{n}]({a})"),
            Expr::ArrApply { input, body } => write!(f, "ARR_APPLY[{body}]({input})"),
            Expr::SubArr(a, m, n) => write!(f, "SUBARR[{m},{n}]({a})"),
            Expr::ArrCat(a, b) => write!(f, "ARR_CAT({a}, {b})"),
            Expr::ArrCollapse(a) => write!(f, "ARR_COLLAPSE({a})"),
            Expr::ArrDiff(a, b) => write!(f, "ARR_DIFF({a}, {b})"),
            Expr::ArrDupElim(a) => write!(f, "ARR_DE({a})"),
            Expr::ArrCross(a, b) => write!(f, "ARR_CROSS({a}, {b})"),
            Expr::MakeRef(a, t) => write!(f, "REF[{t}]({a})"),
            Expr::Deref(a) => write!(f, "DEREF({a})"),
            Expr::Comp { input, pred } => write!(f, "COMP[{pred}]({input})"),
            Expr::Call(func, args) => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Expr::Select { input, pred } => write!(f, "σ[{pred}]({input})"),
            Expr::ArrSelect { input, pred } => write!(f, "arr_σ[{pred}]({input})"),
            Expr::RelJoin { left, right, pred } => {
                write!(f, "rel_join[{pred}]({left}, {right})")
            }
            Expr::RelCross(a, b) => write!(f, "rel_×({a}, {b})"),
            Expr::SetApplySwitch { input, table } => {
                f.write_str("SET_APPLY_SWITCH[")?;
                for (i, (t, e)) in table.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{t} → {e}")?;
                }
                write!(f, "]({input})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        // Figure 3: π_{name,salary}(DEREF(ARR_EXTRACT_5(TopTen)))
        let e = Expr::named("TopTen")
            .arr_extract(5)
            .deref()
            .project(["name", "salary"]);
        assert_eq!(
            e.to_string(),
            "π[name,salary](DEREF(ARR_EXTRACT[5](TopTen)))"
        );
    }

    #[test]
    fn operator_count_is_the_induction_measure() {
        let e = Expr::named("A").dup_elim().make_set();
        assert_eq!(e.operator_count(), 2);
        assert_eq!(Expr::named("A").operator_count(), 0);
    }

    #[test]
    fn desugar_select_to_set_apply_comp() {
        let p = Pred::eq(Expr::input(), Expr::int(1));
        let e = Expr::named("A").select(p.clone());
        let expanded = e.desugar();
        match expanded {
            Expr::SetApply {
                body,
                only_types: None,
                ..
            } => match *body {
                Expr::Comp { input, .. } => assert_eq!(*input, Expr::input()),
                other => panic!("expected COMP, got {other}"),
            },
            other => panic!("expected SET_APPLY, got {other}"),
        }
    }

    #[test]
    fn desugar_is_primitive_only() {
        let p = Pred::eq(Expr::input().extract("a"), Expr::int(1));
        let e = Expr::named("A")
            .rel_join(Expr::named("B"), p)
            .dup_elim()
            .make_set()
            .set_collapse();
        fn all_primitive(e: &Expr) -> bool {
            !matches!(
                e,
                Expr::Union(..)
                    | Expr::Intersect(..)
                    | Expr::Select { .. }
                    | Expr::ArrSelect { .. }
                    | Expr::RelJoin { .. }
                    | Expr::RelCross(..)
            ) && e.children().iter().all(|c| all_primitive(c))
        }
        assert!(all_primitive(&e.desugar()));
    }

    #[test]
    fn mentions_input_respects_binders() {
        // SET_APPLY[INPUT](A): the Input(0) is bound by the SET_APPLY, so
        // the whole expression has no free Input(0).
        let e = Expr::named("A").set_apply(Expr::input());
        assert!(!e.mentions_input(0));
        // SET_APPLY[INPUT^1](A) mentions the *enclosing* binder.
        let e2 = Expr::named("A").set_apply(Expr::input_at(1));
        assert!(e2.mentions_input(0));
        assert!(Expr::input().mentions_input(0));
    }

    #[test]
    fn substitute_input_shifts_under_binders() {
        // Substituting X for INPUT inside SET_APPLY[INPUT^1](B) must hit
        // the INPUT^1 (which refers to the outer binder).
        let outer_body = Expr::named("B").set_apply(Expr::input_at(1));
        let substituted = outer_body.substitute_input(0, &Expr::named("X"));
        assert_eq!(substituted, Expr::named("B").set_apply(Expr::named("X")));
    }

    #[test]
    fn mints_oids_detects_ref_anywhere() {
        let e = Expr::named("A").set_apply(Expr::input().make_ref("T"));
        assert!(e.mints_oids());
        assert!(!Expr::named("A").dup_elim().mints_oids());
    }
}
