//! Per-operator execution profiling (the dynamic half of EXPLAIN ANALYZE).
//!
//! A [`TraceSink`] hangs off [`EvalCtx`](crate::eval::EvalCtx) and is
//! strictly opt-in: when absent, the evaluator pays a single `Option`
//! check per node and allocates nothing.  When present, every evaluation
//! of every operator node is bracketed by [`TraceSink::enter`] /
//! [`TraceSink::exit`], which attribute to that node:
//!
//! * invocation count (a SET_APPLY body runs once per occurrence);
//! * input cardinality (occurrences/elements produced by its child
//!   operators, per invocation) and output cardinality;
//! * the [`Counters`] delta, split into *inclusive* (node + descendants)
//!   and *self* (node alone) — self deltas across the whole span tree sum
//!   exactly to the global counter delta, because per invocation
//!   `self = inclusive − Σ children-inclusive` telescopes;
//! * wall time, with the same inclusive/self split.
//!
//! Nodes are keyed by their *path* in the [`Expr`] tree — the sequence of
//! child indices (as ordered by [`Expr::children`]) from the root — so a
//! profile can be joined against the static plan shape (and against the
//! cost model's per-node estimates) without any node identity stored in
//! the plan itself.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::counters::Counters;
use crate::error::EvalResult;
use crate::expr::Expr;
use crate::render::op_label;
use excess_types::Value;

/// The path of a node in the expression tree: child indices from the root
/// (the root itself is the empty path).  Ordering is lexicographic, which
/// is exactly depth-first preorder.
pub type NodePath = Vec<usize>;

/// Human-readable rendering of a [`NodePath`]: `root` for the empty path,
/// otherwise the dotted child indices in brackets (`[0.2.1]`).  Inference
/// errors and verifier diagnostics both use this, so positions render
/// identically everywhere.
pub fn path_string(path: &[usize]) -> String {
    if path.is_empty() {
        return "root".to_string();
    }
    let parts: Vec<String> = path.iter().map(|i| i.to_string()).collect();
    format!("[{}]", parts.join("."))
}

/// One evaluation frame: a node currently being evaluated.
struct Frame {
    /// Where this node sits in the plan tree.
    path: NodePath,
    /// `children()` of the node, by address, so a recursive `eval` call can
    /// find its own child index with pointer comparisons only.
    child_ptrs: Vec<*const Expr>,
    /// Used when a traced evaluation recurses into an expression that is
    /// not a structural child (not reachable via `children()`); such
    /// detached frames are merged under one synthetic child slot.
    detached_slot: usize,
    /// Global counters at entry.
    entry_counters: Counters,
    /// Wall clock at entry.
    entry_instant: Instant,
    /// Σ inclusive counters of completed direct children.
    child_counters: Counters,
    /// Σ inclusive wall time of completed direct children.
    child_wall: Duration,
    /// Σ output cardinality of completed direct children.
    rows_in: u64,
}

/// Token handed out by [`TraceSink::enter`] and consumed by
/// [`TraceSink::exit`]; holds the stack depth so mismatches are caught.
#[derive(Debug)]
pub struct FrameToken(usize);

/// Accumulated statistics for one plan node across all its invocations.
#[derive(Debug, Clone, Default)]
struct NodeAgg {
    label: String,
    calls: u64,
    rows_in: u64,
    rows_out: u64,
    self_counters: Counters,
    total_counters: Counters,
    self_wall: Duration,
    total_wall: Duration,
}

/// Collects the span tree while evaluation runs.
pub struct TraceSink {
    stack: Vec<Frame>,
    nodes: BTreeMap<NodePath, NodeAgg>,
    /// Global counter delta over all root evaluations seen by this sink.
    total: Counters,
    /// Wall time over all root evaluations.
    total_wall: Duration,
    /// Coarse-timestamp mode: sample the clock once per invocation (at
    /// exit) instead of twice, halving the observer effect for deep plans.
    /// A frame's entry time is approximated by the most recent clock
    /// sample, so any parent self-work since the previous exit is
    /// attributed to the next child — acceptable drift when node count,
    /// not per-node precision, dominates tracing overhead.
    coarse: bool,
    /// Most recent clock sample (coarse mode's stand-in for entry times).
    last_stamp: Instant,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// An empty sink, ready to record with exact per-frame timestamps
    /// (two clock samples per invocation).
    pub fn new() -> Self {
        Self::with_mode(false)
    }

    /// An empty sink in coarse-timestamp mode: one clock sample per
    /// invocation (see [`TraceSink::is_coarse`] for the trade-off).
    pub fn new_coarse() -> Self {
        Self::with_mode(true)
    }

    fn with_mode(coarse: bool) -> Self {
        TraceSink {
            stack: Vec::new(),
            nodes: BTreeMap::new(),
            total: Counters::new(),
            total_wall: Duration::ZERO,
            coarse,
            last_stamp: Instant::now(),
        }
    }

    /// `true` when this sink samples the clock once per invocation (at
    /// exit) rather than at both enter and exit.  Counters are exact in
    /// both modes; only the wall-time split between a parent's self time
    /// and its next child blurs in coarse mode.
    pub fn is_coarse(&self) -> bool {
        self.coarse
    }

    /// Open a frame for `e`.  `counters` is the global counter state at
    /// entry.
    pub fn enter(&mut self, e: &Expr, counters: Counters) -> FrameToken {
        let path = match self.stack.last_mut() {
            None => Vec::new(),
            Some(parent) => {
                let idx = parent
                    .child_ptrs
                    .iter()
                    .position(|p| std::ptr::eq(*p, e))
                    .unwrap_or(parent.detached_slot);
                let mut p = parent.path.clone();
                p.push(idx);
                p
            }
        };
        let child_ptrs: Vec<*const Expr> =
            e.children().into_iter().map(|c| c as *const Expr).collect();
        let detached_slot = child_ptrs.len();
        let entry_instant = if self.coarse {
            self.last_stamp
        } else {
            Instant::now()
        };
        self.stack.push(Frame {
            path,
            child_ptrs,
            detached_slot,
            entry_counters: counters,
            entry_instant,
            child_counters: Counters::new(),
            child_wall: Duration::ZERO,
            rows_in: 0,
        });
        FrameToken(self.stack.len())
    }

    /// Close the frame opened by `token`, folding this invocation into the
    /// node's aggregate and crediting the parent frame.
    pub fn exit(
        &mut self,
        token: FrameToken,
        e: &Expr,
        result: &EvalResult<Value>,
        counters: Counters,
    ) {
        assert_eq!(token.0, self.stack.len(), "mismatched TraceSink enter/exit");
        let frame = self.stack.pop().expect("token guarantees a frame");
        let inclusive = counters.diff(&frame.entry_counters);
        let wall = if self.coarse {
            let now = Instant::now();
            let wall = now.duration_since(frame.entry_instant);
            self.last_stamp = now;
            wall
        } else {
            frame.entry_instant.elapsed()
        };
        let self_counters = inclusive.diff(&frame.child_counters);
        let self_wall = wall.saturating_sub(frame.child_wall);
        let rows_out = match result {
            Ok(Value::Set(s)) => s.len(),
            Ok(Value::Array(a)) => a.len() as u64,
            Ok(_) => 1,
            Err(_) => 0,
        };

        let agg = self.nodes.entry(frame.path).or_default();
        if agg.calls == 0 {
            agg.label = op_label(e);
        }
        agg.calls += 1;
        agg.rows_in += frame.rows_in;
        agg.rows_out += rows_out;
        agg.self_counters += self_counters;
        agg.total_counters += inclusive;
        agg.self_wall += self_wall;
        agg.total_wall += wall;

        match self.stack.last_mut() {
            Some(parent) => {
                parent.child_counters += inclusive;
                parent.child_wall += wall;
                parent.rows_in += rows_out;
            }
            None => {
                self.total += inclusive;
                self.total_wall += wall;
            }
        }
    }

    /// Freeze the recording into a [`Profile`].  Panics if called while
    /// frames are still open.
    pub fn finish(self) -> Profile {
        assert!(self.stack.is_empty(), "TraceSink finished with open frames");
        Profile {
            nodes: self
                .nodes
                .into_iter()
                .map(|(path, a)| NodeProfile {
                    path,
                    label: a.label,
                    calls: a.calls,
                    rows_in: a.rows_in,
                    rows_out: a.rows_out,
                    self_counters: a.self_counters,
                    total_counters: a.total_counters,
                    self_wall: a.self_wall,
                    total_wall: a.total_wall,
                })
                .collect(),
            total: self.total,
            total_wall: self.total_wall,
        }
    }
}

/// Execution statistics for one plan node, aggregated over all its
/// invocations during one (or more) evaluations.
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// Child-index path from the root (empty for the root node).
    pub path: NodePath,
    /// Operator label, as rendered in plan trees (e.g. `DE`, `σ[…]`).
    pub label: String,
    /// Number of times this node was evaluated (bodies under an APPLY run
    /// once per occurrence).
    pub calls: u64,
    /// Total cardinality produced by this node's direct children across
    /// all invocations (1 per scalar/tuple/ref child result; multiset and
    /// array children contribute their occurrence/element count).
    pub rows_in: u64,
    /// Total cardinality this node produced across all invocations.
    pub rows_out: u64,
    /// Counter delta attributable to this node alone.
    pub self_counters: Counters,
    /// Counter delta including all descendant nodes.
    pub total_counters: Counters,
    /// Wall time attributable to this node alone.
    pub self_wall: Duration,
    /// Wall time including all descendant nodes.
    pub total_wall: Duration,
}

/// The result of profiling: one entry per distinct plan node, in
/// depth-first preorder, plus the global totals the per-node self deltas
/// sum to.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Per-node statistics in preorder (lexicographic path order).
    pub nodes: Vec<NodeProfile>,
    /// Global counter delta observed while tracing (equals the sum of
    /// every node's `self_counters`).
    pub total: Counters,
    /// Global wall time observed while tracing.
    pub total_wall: Duration,
}

impl Profile {
    /// Look up a node by its path.
    pub fn node(&self, path: &[usize]) -> Option<&NodeProfile> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// The root node's statistics (present whenever anything was traced).
    pub fn root(&self) -> Option<&NodeProfile> {
        self.node(&[])
    }

    /// Sum of per-node self counters — by construction equal to
    /// [`Profile::total`]; exposed so tests can assert the invariant.
    pub fn sum_of_self_counters(&self) -> Counters {
        let mut acc = Counters::new();
        for n in &self.nodes {
            acc += n.self_counters;
        }
        acc
    }

    /// Combine several profiles (e.g. one per worker thread of a parallel
    /// run) into one: nodes are aggregated by path (first label wins, all
    /// counts sum) and the global totals add.  Because each input profile
    /// satisfies `sum_of_self_counters() == total`, so does the merge —
    /// the telescoping invariant survives parallel execution.
    pub fn merge(parts: impl IntoIterator<Item = Profile>) -> Profile {
        let mut nodes: std::collections::BTreeMap<NodePath, NodeProfile> = Default::default();
        let mut total = Counters::new();
        let mut total_wall = Duration::ZERO;
        for p in parts {
            total += p.total;
            total_wall += p.total_wall;
            for n in p.nodes {
                match nodes.get_mut(&n.path) {
                    None => {
                        nodes.insert(n.path.clone(), n);
                    }
                    Some(agg) => {
                        agg.calls += n.calls;
                        agg.rows_in += n.rows_in;
                        agg.rows_out += n.rows_out;
                        agg.self_counters += n.self_counters;
                        agg.total_counters += n.total_counters;
                        agg.self_wall += n.self_wall;
                        agg.total_wall += n.total_wall;
                    }
                }
            }
        }
        Profile {
            nodes: nodes.into_values().collect(),
            total,
            total_wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::{evaluate, EvalCtx};
    use crate::expr::Expr;
    use excess_types::{ObjectStore, TypeRegistry, Value};
    use std::collections::HashMap;

    fn ints(xs: impl IntoIterator<Item = i32>) -> Value {
        Value::set(xs.into_iter().map(Value::int))
    }

    #[test]
    fn profile_attributes_de_input_to_the_de_node() {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = HashMap::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
        ctx.enable_tracing();

        // DE(SET_APPLY(input, INPUT + 0)) over {1,1,2,3}
        let plan = Expr::lit(ints([1, 1, 2, 3]))
            .set_apply(Expr::input())
            .dup_elim();
        evaluate(&plan, &mut ctx).unwrap();
        let profile = ctx.take_profile().expect("tracing was enabled");

        let root = profile.root().expect("root profiled");
        assert_eq!(root.label, "DE");
        assert_eq!(root.calls, 1);
        assert_eq!(root.rows_in, 4);
        assert_eq!(root.rows_out, 3);
        assert_eq!(root.self_counters.de_input_occurrences, 4);
        assert_eq!(root.self_counters.occurrences_scanned, 0);

        let apply = profile.node(&[0]).expect("SET_APPLY profiled");
        assert_eq!(apply.label, "SET_APPLY");
        assert_eq!(apply.self_counters.occurrences_scanned, 4);
        // The body ran once per occurrence.
        let body = profile.node(&[0, 1]).expect("body profiled");
        assert_eq!(body.calls, 4);
    }

    #[test]
    fn self_deltas_sum_to_global_counters() {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = HashMap::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
        ctx.enable_tracing();

        let plan = Expr::lit(ints(0..20))
            .set_apply(Expr::input())
            .dup_elim()
            .cross(Expr::lit(ints([1, 2, 3])));
        evaluate(&plan, &mut ctx).unwrap();

        let global = ctx.counters;
        let profile = ctx.take_profile().unwrap();
        assert_eq!(profile.total, global);
        assert_eq!(profile.sum_of_self_counters(), global);
        assert!(global.total() > 0, "plan should have done some work");
    }

    #[test]
    fn profiling_does_not_change_results_or_counters() {
        let reg = TypeRegistry::new();
        let plan = Expr::lit(ints(0..10)).set_apply(Expr::input()).dup_elim();
        let cat: HashMap<String, Value> = HashMap::new();

        let mut store_a = ObjectStore::new();
        let mut plain = EvalCtx::new(&reg, &mut store_a, &cat);
        let out_plain = evaluate(&plan, &mut plain).unwrap();

        let mut store_b = ObjectStore::new();
        let mut traced = EvalCtx::new(&reg, &mut store_b, &cat);
        traced.enable_tracing();
        let out_traced = evaluate(&plan, &mut traced).unwrap();

        assert_eq!(out_plain, out_traced);
        assert_eq!(plain.counters, traced.counters);
    }

    #[test]
    fn coarse_mode_keeps_counters_exact() {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = HashMap::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
        ctx.enable_coarse_tracing();

        let plan = Expr::lit(ints(0..20)).set_apply(Expr::input()).dup_elim();
        evaluate(&plan, &mut ctx).unwrap();
        let global = ctx.counters;
        let profile = ctx.take_profile().unwrap();
        // Counters are sampled identically in both modes; only wall-time
        // attribution coarsens.
        assert_eq!(profile.total, global);
        assert_eq!(profile.sum_of_self_counters(), global);
        let root = profile.root().unwrap();
        assert_eq!(root.label, "DE");
        assert_eq!(root.self_counters.de_input_occurrences, 20);
    }

    #[test]
    fn take_profile_is_none_without_opt_in() {
        let reg = TypeRegistry::new();
        let mut store = ObjectStore::new();
        let cat: HashMap<String, Value> = HashMap::new();
        let mut ctx = EvalCtx::new(&reg, &mut store, &cat);
        evaluate(&Expr::lit(ints([1])), &mut ctx).unwrap();
        assert!(ctx.take_profile().is_none());
    }
}
