//! Output-schema inference for algebra expressions.
//!
//! Given the schemas of the named top-level objects (and of any enclosing
//! binders), every operator of the algebra determines its output schema —
//! that closure property is what makes the algebra an algebra.  The
//! decompiler (equipollence direction ii) uses this to emit the
//! `define type` statements the proof's `ARR_APPLY` case needs, and the
//! optimizer uses the coarse sort to restrict which rules apply ("if the
//! optimizer is examining a node … that operates on a multiset, the rules
//! regarding arrays need not be applied").

use crate::expr::{Expr, Func, Pred};
use crate::profile::{path_string, NodePath};
use excess_types::{Scalar, ScalarType, SchemaType, TypeRegistry, Value};
use std::fmt;

/// Inference failure: a human-readable reason plus the path of the node it
/// was detected at (child indices from the root, [`Expr::children`] order —
/// the same scheme the optimizer's `neighbors_at` and the profiler use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferError {
    /// Where in the plan the failure was detected.
    pub path: NodePath,
    /// What went wrong.
    pub message: String,
}

impl InferError {
    /// Build an error at the given node path.
    pub fn new(path: NodePath, message: impl Into<String>) -> Self {
        InferError {
            path,
            message: message.into(),
        }
    }
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "type inference failed at {}: {}",
            path_string(&self.path),
            self.message
        )
    }
}

impl std::error::Error for InferError {}

/// Schema source for named top-level objects.
pub trait SchemaCatalog {
    /// The declared schema of the named object, if known.
    fn object_schema(&self, name: &str) -> Option<SchemaType>;
}

impl SchemaCatalog for std::collections::HashMap<String, SchemaType> {
    fn object_schema(&self, name: &str) -> Option<SchemaType> {
        self.get(name).cloned()
    }
}

/// The coarse sort of a schema — the "many sorted" classification used by
/// the optimizer's applicability filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sort {
    /// Multiset sort.
    Set,
    /// Array sort.
    Arr,
    /// Tuple sort.
    Tup,
    /// Reference sort.
    Ref,
    /// Scalar ("val") sort.
    Val,
}

/// The coarse sort of a schema type (named types resolve through `reg`).
pub fn sort_of(t: &SchemaType, reg: &TypeRegistry) -> Option<Sort> {
    match t {
        SchemaType::Val(_) => Some(Sort::Val),
        SchemaType::Tup(_) => Some(Sort::Tup),
        SchemaType::Set(_) => Some(Sort::Set),
        SchemaType::Arr { .. } => Some(Sort::Arr),
        SchemaType::Ref(_) => Some(Sort::Ref),
        SchemaType::Named(n) => {
            let id = reg.lookup(n).ok()?;
            sort_of(&reg.full_body(id).ok()?, reg)
        }
    }
}

/// Synthesise the schema of a literal value.  Empty collections get an
/// empty-tuple element type (no information is available; the choice is
/// harmless because no element exists to violate it).
pub fn value_schema(v: &Value, reg: &TypeRegistry) -> SchemaType {
    match v {
        Value::Scalar(s) => SchemaType::Val(s.scalar_type()),
        Value::Null(_) => SchemaType::Tup(vec![]), // no better information
        Value::Tuple(t) => SchemaType::Tup(
            t.iter()
                .map(|(n, fv)| (n.to_string(), value_schema(fv, reg)))
                .collect(),
        ),
        Value::Set(s) => {
            let elem = s
                .iter_counted()
                .next()
                .map(|(e, _)| value_schema(e, reg))
                .unwrap_or(SchemaType::Tup(vec![]));
            SchemaType::set(elem)
        }
        Value::Array(a) => {
            let elem = a
                .first()
                .map(|e| value_schema(e, reg))
                .unwrap_or(SchemaType::Tup(vec![]));
            SchemaType::array(elem)
        }
        Value::Ref(oid) => SchemaType::reference(reg.name_of(oid.minted)),
    }
}

/// Resolve `Named` one level so structure is visible.  Errors are
/// attributed to the node at `path`.
fn resolve(t: SchemaType, reg: &TypeRegistry, path: &[usize]) -> Result<SchemaType, InferError> {
    match t {
        SchemaType::Named(n) => {
            let id = reg
                .lookup(&n)
                .map_err(|e| InferError::new(path.to_vec(), e.to_string()))?;
            reg.full_body(id)
                .map_err(|e| InferError::new(path.to_vec(), e.to_string()))
        }
        other => Ok(other),
    }
}

fn elem_of_set(
    t: SchemaType,
    reg: &TypeRegistry,
    op: &str,
    path: &[usize],
) -> Result<SchemaType, InferError> {
    match resolve(t, reg, path)? {
        SchemaType::Set(e) => Ok(*e),
        other => Err(InferError::new(
            path.to_vec(),
            format!("{op}: expected multiset, found {other}"),
        )),
    }
}

fn elem_of_arr(
    t: SchemaType,
    reg: &TypeRegistry,
    op: &str,
    path: &[usize],
) -> Result<SchemaType, InferError> {
    match resolve(t, reg, path)? {
        SchemaType::Arr { elem, .. } => Ok(*elem),
        other => Err(InferError::new(
            path.to_vec(),
            format!("{op}: expected array, found {other}"),
        )),
    }
}

fn fields_of(
    t: SchemaType,
    reg: &TypeRegistry,
    op: &str,
    path: &[usize],
) -> Result<Vec<(String, SchemaType)>, InferError> {
    match resolve(t, reg, path)? {
        SchemaType::Tup(fs) => Ok(fs),
        other => Err(InferError::new(
            path.to_vec(),
            format!("{op}: expected tuple, found {other}"),
        )),
    }
}

/// Concatenate tuple field lists with the same clash-priming rule as
/// [`excess_types::Tuple::cat`].
pub(crate) fn cat_fields(
    mut a: Vec<(String, SchemaType)>,
    b: Vec<(String, SchemaType)>,
) -> Vec<(String, SchemaType)> {
    for (n, t) in b {
        let mut name = n;
        while a.iter().any(|(m, _)| *m == name) {
            name.push('\'');
        }
        a.push((name, t));
    }
    a
}

pub(crate) fn numeric_join(a: &SchemaType, b: &SchemaType) -> SchemaType {
    if *a == SchemaType::int4() && *b == SchemaType::int4() {
        SchemaType::int4()
    } else {
        SchemaType::float4()
    }
}

/// Infer the output schema of `e`.  `env` holds binder element schemas
/// (innermost last).  Failures carry the node path of the offending node.
pub fn infer(
    e: &Expr,
    env: &mut Vec<SchemaType>,
    cat: &dyn SchemaCatalog,
    reg: &TypeRegistry,
) -> Result<SchemaType, InferError> {
    let mut path = NodePath::new();
    infer_at(e, env, cat, reg, &mut path)
}

/// Infer the `i`-th child (pushing/popping its index on `path`).
fn child(
    e: &Expr,
    env: &mut Vec<SchemaType>,
    cat: &dyn SchemaCatalog,
    reg: &TypeRegistry,
    path: &mut NodePath,
    i: usize,
) -> Result<SchemaType, InferError> {
    path.push(i);
    let r = infer_at(e, env, cat, reg, path);
    path.pop();
    r
}

/// [`infer`] with an explicit position: `path` is where `e` itself sits in
/// the enclosing plan (child indices in [`Expr::children`] order), so
/// errors anywhere below are attributed to their exact node.
pub fn infer_at(
    e: &Expr,
    env: &mut Vec<SchemaType>,
    cat: &dyn SchemaCatalog,
    reg: &TypeRegistry,
    path: &mut NodePath,
) -> Result<SchemaType, InferError> {
    let err = |path: &NodePath, msg: String| InferError::new(path.clone(), msg);
    match e {
        Expr::Input(d) => env
            .get(env.len().wrapping_sub(1 + d))
            .cloned()
            .ok_or_else(|| err(path, format!("INPUT^{d} unbound"))),
        Expr::Named(n) => cat
            .object_schema(n)
            .ok_or_else(|| err(path, format!("unknown object `{n}`"))),
        Expr::Const(v) => Ok(value_schema(v, reg)),

        Expr::AddUnion(a, b) | Expr::Diff(a, b) | Expr::Union(a, b) | Expr::Intersect(a, b) => {
            let ta = child(a, env, cat, reg, path, 0)?;
            let tb = child(b, env, cat, reg, path, 1)?;
            let _ = elem_of_set(tb, reg, "set-binop", path)?;
            let _ = elem_of_set(ta.clone(), reg, "set-binop", path)?;
            Ok(ta)
        }
        Expr::MakeSet(a) => Ok(SchemaType::set(child(a, env, cat, reg, path, 0)?)),
        Expr::SetApply {
            input,
            body,
            only_types,
        } => {
            // With a type filter, the element type is the owning type (the
            // first name by convention); otherwise the input's element type.
            let ti = child(input, env, cat, reg, path, 0)?;
            let input_elem = elem_of_set(ti, reg, "SET_APPLY", path)?;
            let elem = match only_types.as_ref().and_then(|ts| ts.first()) {
                Some(t) => SchemaType::named(t.clone()),
                None => input_elem,
            };
            env.push(elem);
            let out = child(body, env, cat, reg, path, 1);
            env.pop();
            Ok(SchemaType::set(out?))
        }
        Expr::Group { input, by } => {
            let elem = elem_of_set(child(input, env, cat, reg, path, 0)?, reg, "GRP", path)?;
            env.push(elem.clone());
            let key = child(by, env, cat, reg, path, 1);
            env.pop();
            key?; // the key type must be well-formed, but is not part of the output
            Ok(SchemaType::set(SchemaType::set(elem)))
        }
        Expr::DupElim(a) => {
            let t = child(a, env, cat, reg, path, 0)?;
            let _ = elem_of_set(t.clone(), reg, "DE", path)?;
            Ok(t)
        }
        Expr::Cross(a, b) => {
            let ea = elem_of_set(child(a, env, cat, reg, path, 0)?, reg, "×", path)?;
            let eb = elem_of_set(child(b, env, cat, reg, path, 1)?, reg, "×", path)?;
            Ok(SchemaType::set(SchemaType::tuple([
                ("fst", ea),
                ("snd", eb),
            ])))
        }
        Expr::SetCollapse(a) => {
            let outer = elem_of_set(child(a, env, cat, reg, path, 0)?, reg, "SET_COLLAPSE", path)?;
            let inner = elem_of_set(outer, reg, "SET_COLLAPSE", path)?;
            Ok(SchemaType::set(inner))
        }

        Expr::Project(a, names) => {
            let fs = fields_of(child(a, env, cat, reg, path, 0)?, reg, "π", path)?;
            let mut out = Vec::with_capacity(names.len());
            for n in names {
                let t = fs
                    .iter()
                    .find(|(m, _)| m == n)
                    .map(|(_, t)| t.clone())
                    .ok_or_else(|| err(path, format!("π: no field `{n}`")))?;
                out.push((n.clone(), t));
            }
            Ok(SchemaType::Tup(out))
        }
        Expr::TupCat(a, b) => {
            let fa = fields_of(child(a, env, cat, reg, path, 0)?, reg, "TUP_CAT", path)?;
            let fb = fields_of(child(b, env, cat, reg, path, 1)?, reg, "TUP_CAT", path)?;
            Ok(SchemaType::Tup(cat_fields(fa, fb)))
        }
        Expr::TupExtract(a, n) => {
            let fs = fields_of(child(a, env, cat, reg, path, 0)?, reg, "TUP_EXTRACT", path)?;
            fs.into_iter()
                .find(|(m, _)| m == n)
                .map(|(_, t)| t)
                .ok_or_else(|| err(path, format!("TUP_EXTRACT: no field `{n}`")))
        }
        Expr::MakeTup(a, n) => Ok(SchemaType::Tup(vec![(
            n.clone(),
            child(a, env, cat, reg, path, 0)?,
        )])),

        Expr::MakeArr(a) => Ok(SchemaType::array(child(a, env, cat, reg, path, 0)?)),
        Expr::ArrExtract(a, _) => {
            elem_of_arr(child(a, env, cat, reg, path, 0)?, reg, "ARR_EXTRACT", path)
        }
        Expr::ArrApply { input, body } => {
            let elem = elem_of_arr(
                child(input, env, cat, reg, path, 0)?,
                reg,
                "ARR_APPLY",
                path,
            )?;
            env.push(elem);
            let out = child(body, env, cat, reg, path, 1);
            env.pop();
            Ok(SchemaType::array(out?))
        }
        Expr::SubArr(a, _, _) | Expr::ArrDupElim(a) => {
            let t = child(a, env, cat, reg, path, 0)?;
            let elem = elem_of_arr(t, reg, "SUBARR", path)?;
            Ok(SchemaType::array(elem))
        }
        Expr::ArrCat(a, b) | Expr::ArrDiff(a, b) => {
            let ta = child(a, env, cat, reg, path, 0)?;
            let _ = elem_of_arr(child(b, env, cat, reg, path, 1)?, reg, "ARR_CAT", path)?;
            let elem = elem_of_arr(ta, reg, "ARR_CAT", path)?;
            Ok(SchemaType::array(elem))
        }
        Expr::ArrCollapse(a) => {
            let outer = elem_of_arr(child(a, env, cat, reg, path, 0)?, reg, "ARR_COLLAPSE", path)?;
            let inner = elem_of_arr(outer, reg, "ARR_COLLAPSE", path)?;
            Ok(SchemaType::array(inner))
        }
        Expr::ArrCross(a, b) => {
            let ea = elem_of_arr(child(a, env, cat, reg, path, 0)?, reg, "ARR_CROSS", path)?;
            let eb = elem_of_arr(child(b, env, cat, reg, path, 1)?, reg, "ARR_CROSS", path)?;
            Ok(SchemaType::array(SchemaType::tuple([
                ("fst", ea),
                ("snd", eb),
            ])))
        }

        Expr::MakeRef(a, ty) => {
            let _ = child(a, env, cat, reg, path, 0)?;
            Ok(SchemaType::reference(ty.clone()))
        }
        Expr::Deref(a) => match resolve(child(a, env, cat, reg, path, 0)?, reg, path)? {
            SchemaType::Ref(n) => Ok(SchemaType::named(n)),
            other => Err(err(path, format!("DEREF: expected ref, found {other}"))),
        },

        Expr::Comp { input, pred } => {
            let t = child(input, env, cat, reg, path, 0)?;
            env.push(t.clone());
            let mut idx = 1;
            let r = check_pred(pred, env, cat, reg, path, &mut idx);
            env.pop();
            r?;
            Ok(t)
        }
        Expr::Select { input, pred } => {
            let t = child(input, env, cat, reg, path, 0)?;
            let elem = elem_of_set(t.clone(), reg, "σ", path)?;
            env.push(elem);
            let mut idx = 1;
            let r = check_pred(pred, env, cat, reg, path, &mut idx);
            env.pop();
            r?;
            Ok(t)
        }
        Expr::ArrSelect { input, pred } => {
            let t = child(input, env, cat, reg, path, 0)?;
            let elem = elem_of_arr(t.clone(), reg, "arr_σ", path)?;
            env.push(elem);
            let mut idx = 1;
            let r = check_pred(pred, env, cat, reg, path, &mut idx);
            env.pop();
            r?;
            Ok(t)
        }
        Expr::RelCross(a, b)
        | Expr::RelJoin {
            left: a, right: b, ..
        } => {
            let ea = elem_of_set(child(a, env, cat, reg, path, 0)?, reg, "rel_×", path)?;
            let eb = elem_of_set(child(b, env, cat, reg, path, 1)?, reg, "rel_×", path)?;
            let fa = fields_of(ea, reg, "rel_×", path)?;
            let fb = fields_of(eb, reg, "rel_×", path)?;
            let joined = SchemaType::Tup(cat_fields(fa, fb));
            if let Expr::RelJoin { pred, .. } = e {
                env.push(joined.clone());
                let mut idx = 2;
                let r = check_pred(pred, env, cat, reg, path, &mut idx);
                env.pop();
                r?;
            }
            Ok(SchemaType::set(joined))
        }

        Expr::Call(f, args) => {
            let mut arg_tys = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                arg_tys.push(child(a, env, cat, reg, path, i)?);
            }
            match f {
                Func::Add | Func::Sub | Func::Mul | Func::Div => {
                    if arg_tys.len() != 2 {
                        return Err(err(path, "arithmetic needs 2 arguments".into()));
                    }
                    Ok(numeric_join(&arg_tys[0], &arg_tys[1]))
                }
                Func::Neg => arg_tys
                    .into_iter()
                    .next()
                    .ok_or_else(|| err(path, "neg needs 1 arg".into())),
                Func::Count => Ok(SchemaType::int4()),
                Func::Avg => Ok(SchemaType::float4()),
                Func::Age => Ok(SchemaType::int4()),
                Func::The => {
                    let t = arg_tys
                        .into_iter()
                        .next()
                        .ok_or_else(|| err(path, "the arity".into()))?;
                    match resolve(t, reg, path)? {
                        SchemaType::Set(e) => Ok(*e),
                        other => Err(err(path, format!("the() over non-multiset {other}"))),
                    }
                }
                Func::Min | Func::Max | Func::Sum => {
                    let t = arg_tys
                        .into_iter()
                        .next()
                        .ok_or_else(|| err(path, "aggregate arity".into()))?;
                    match resolve(t, reg, path)? {
                        SchemaType::Set(e) => Ok(*e),
                        SchemaType::Arr { elem, .. } => Ok(*elem),
                        other => Err(err(path, format!("aggregate over non-collection {other}"))),
                    }
                }
            }
        }

        Expr::SetApplySwitch { input, table } => {
            let elem = elem_of_set(
                child(input, env, cat, reg, path, 0)?,
                reg,
                "SET_APPLY_SWITCH",
                path,
            )?;
            // Overridden methods "require that the type signatures of all
            // the methods be identical", so the first arm determines the
            // output; remaining arms are checked against their own types.
            let mut result: Option<SchemaType> = None;
            for (i, (ty_name, body)) in table.iter().enumerate() {
                let arm_elem = SchemaType::named(ty_name.clone());
                env.push(arm_elem);
                let out = child(body, env, cat, reg, path, 1 + i);
                env.pop();
                let out = out?;
                if result.is_none() {
                    result = Some(out);
                }
            }
            let out = result.unwrap_or(elem);
            Ok(SchemaType::set(out))
        }
    }
}

/// Check the expressions of a predicate; `idx` is the [`Expr::children`]
/// index the predicate's next expression occupies on the parent operator
/// (predicate expressions follow the operator's structural inputs).
fn check_pred(
    p: &Pred,
    env: &mut Vec<SchemaType>,
    cat: &dyn SchemaCatalog,
    reg: &TypeRegistry,
    path: &mut NodePath,
    idx: &mut usize,
) -> Result<(), InferError> {
    match p {
        Pred::Cmp(l, _, r) => {
            let il = *idx;
            *idx += 1;
            child(l, env, cat, reg, path, il)?;
            let ir = *idx;
            *idx += 1;
            child(r, env, cat, reg, path, ir)?;
            Ok(())
        }
        Pred::And(a, b) => {
            check_pred(a, env, cat, reg, path, idx)?;
            check_pred(b, env, cat, reg, path, idx)
        }
        Pred::Not(q) => check_pred(q, env, cat, reg, path, idx),
    }
}

/// Convenience: infer the schema of a closed expression.
pub fn infer_closed(
    e: &Expr,
    cat: &dyn SchemaCatalog,
    reg: &TypeRegistry,
) -> Result<SchemaType, InferError> {
    let mut env = Vec::new();
    infer(e, &mut env, cat, reg)
}

/// Convenience: the coarse sort of a closed expression's output.
pub fn output_sort(e: &Expr, cat: &dyn SchemaCatalog, reg: &TypeRegistry) -> Option<Sort> {
    sort_of(&infer_closed(e, cat, reg).ok()?, reg)
}

// keep Scalar/ScalarType imports used even if match arms change
#[allow(unused)]
fn _scalar_witness(s: &Scalar) -> ScalarType {
    s.scalar_type()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn setup() -> (TypeRegistry, HashMap<String, SchemaType>) {
        let mut reg = TypeRegistry::new();
        reg.define(
            "Dept",
            SchemaType::tuple([("name", SchemaType::chars()), ("floor", SchemaType::int4())]),
        )
        .unwrap();
        reg.define(
            "Emp",
            SchemaType::tuple([
                ("name", SchemaType::chars()),
                ("dept", SchemaType::reference("Dept")),
                ("salary", SchemaType::int4()),
            ]),
        )
        .unwrap();
        let mut cat = HashMap::new();
        cat.insert(
            "Emps".to_string(),
            SchemaType::set(SchemaType::named("Emp")),
        );
        cat.insert(
            "Top".to_string(),
            SchemaType::fixed_array(SchemaType::reference("Emp"), 10),
        );
        (reg, cat)
    }

    #[test]
    fn figure3_plan_types() {
        // π_{name,salary}(DEREF(ARR_EXTRACT_5(Top))) : (name, salary)
        let (reg, cat) = setup();
        let e = Expr::named("Top")
            .arr_extract(5)
            .deref()
            .project(["name", "salary"]);
        let t = infer_closed(&e, &cat, &reg).unwrap();
        assert_eq!(
            t,
            SchemaType::tuple([
                ("name", SchemaType::chars()),
                ("salary", SchemaType::int4())
            ])
        );
    }

    #[test]
    fn set_apply_threads_element_type() {
        let (reg, cat) = setup();
        // SET_APPLY[TUP_EXTRACT_salary(INPUT)](Emps) : { int4 }
        let e = Expr::named("Emps").set_apply(Expr::input().extract("salary"));
        let t = infer_closed(&e, &cat, &reg).unwrap();
        assert_eq!(t, SchemaType::set(SchemaType::int4()));
    }

    #[test]
    fn deref_resolves_to_named_body() {
        let (reg, cat) = setup();
        let e =
            Expr::named("Emps").set_apply(Expr::input().extract("dept").deref().extract("floor"));
        let t = infer_closed(&e, &cat, &reg).unwrap();
        assert_eq!(t, SchemaType::set(SchemaType::int4()));
    }

    #[test]
    fn group_produces_set_of_sets() {
        let (reg, cat) = setup();
        let e = Expr::named("Emps").group_by(Expr::input().extract("salary"));
        let t = infer_closed(&e, &cat, &reg).unwrap();
        assert_eq!(
            t,
            SchemaType::set(SchemaType::set(SchemaType::named("Emp")))
        );
    }

    #[test]
    fn cross_produces_pairs() {
        let (reg, cat) = setup();
        let e = Expr::named("Emps").cross(Expr::named("Emps"));
        let t = infer_closed(&e, &cat, &reg).unwrap();
        assert_eq!(
            t,
            SchemaType::set(SchemaType::tuple([
                ("fst", SchemaType::named("Emp")),
                ("snd", SchemaType::named("Emp")),
            ]))
        );
    }

    #[test]
    fn rel_cross_flattens_with_priming() {
        let (reg, cat) = setup();
        let e = Expr::named("Emps").rel_cross(Expr::named("Emps"));
        let t = infer_closed(&e, &cat, &reg).unwrap();
        let SchemaType::Set(elem) = t else { panic!() };
        let SchemaType::Tup(fs) = *elem else { panic!() };
        let names: Vec<_> = fs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["name", "dept", "salary", "name'", "dept'", "salary'"]
        );
    }

    #[test]
    fn aggregates_type_correctly() {
        let (reg, cat) = setup();
        let salaries = Expr::named("Emps").set_apply(Expr::input().extract("salary"));
        assert_eq!(
            infer_closed(&Expr::call(Func::Min, vec![salaries.clone()]), &cat, &reg).unwrap(),
            SchemaType::int4()
        );
        assert_eq!(
            infer_closed(&Expr::call(Func::Avg, vec![salaries.clone()]), &cat, &reg).unwrap(),
            SchemaType::float4()
        );
        assert_eq!(
            infer_closed(&Expr::call(Func::Count, vec![salaries]), &cat, &reg).unwrap(),
            SchemaType::int4()
        );
    }

    #[test]
    fn sort_mismatch_is_reported() {
        let (reg, cat) = setup();
        let e = Expr::named("Top").dup_elim(); // DE of an array
        assert!(infer_closed(&e, &cat, &reg).is_err());
        let e2 = Expr::named("Emps").arr_extract(1); // ARR_EXTRACT of a set
        assert!(infer_closed(&e2, &cat, &reg).is_err());
    }

    #[test]
    fn output_sort_matches() {
        let (reg, cat) = setup();
        assert_eq!(
            output_sort(&Expr::named("Emps"), &cat, &reg),
            Some(Sort::Set)
        );
        assert_eq!(
            output_sort(&Expr::named("Top"), &cat, &reg),
            Some(Sort::Arr)
        );
        assert_eq!(
            output_sort(&Expr::named("Top").arr_extract(1), &cat, &reg),
            Some(Sort::Ref)
        );
    }
}
