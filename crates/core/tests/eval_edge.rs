//! Evaluator edge cases: null flow, binder discipline, sort errors,
//! dispatch fallback, and counter precision.

use excess_core::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess_core::{evaluate, EvalCtx, EvalError, Truth};
use excess_types::{ObjectStore, SchemaType, TypeRegistry, Value};
use std::collections::HashMap;

struct Fixture {
    reg: TypeRegistry,
    store: ObjectStore,
    cat: HashMap<String, Value>,
}

impl Fixture {
    fn new() -> Self {
        let mut reg = TypeRegistry::new();
        reg.define("Person", SchemaType::tuple([("name", SchemaType::chars())]))
            .unwrap();
        reg.define_with_supertypes(
            "Employee",
            SchemaType::tuple([("salary", SchemaType::int4())]),
            &["Person"],
        )
        .unwrap();
        reg.define_with_supertypes(
            "Manager",
            SchemaType::tuple([("level", SchemaType::int4())]),
            &["Employee"],
        )
        .unwrap();
        Fixture {
            reg,
            store: ObjectStore::new(),
            cat: HashMap::new(),
        }
    }

    fn run(&mut self, e: &Expr) -> Result<Value, EvalError> {
        let cat = &self.cat;
        let mut ctx = EvalCtx::new(&self.reg, &mut self.store, cat);
        evaluate(e, &mut ctx)
    }

    fn run_counting(&mut self, e: &Expr) -> (Value, excess_core::Counters) {
        let cat = &self.cat;
        let mut ctx = EvalCtx::new(&self.reg, &mut self.store, cat);
        let v = evaluate(e, &mut ctx).unwrap();
        (v, ctx.counters)
    }
}

// ---------------- null flow ----------------

#[test]
fn nulls_propagate_through_structural_operators() {
    let mut f = Fixture::new();
    let dne = Expr::lit(Value::dne());
    let unk = Expr::lit(Value::unk());
    assert!(f.run(&dne.clone().extract("x")).unwrap().is_dne());
    assert!(f.run(&unk.clone().extract("x")).unwrap().is_unk());
    assert!(f.run(&dne.clone().deref()).unwrap().is_dne());
    assert!(f.run(&dne.clone().project(["a"])).unwrap().is_dne());
    assert!(f.run(&dne.clone().arr_extract(1)).unwrap().is_dne());
    assert!(f.run(&dne.clone().dup_elim()).unwrap().is_dne());
    assert!(f
        .run(&dne.clone().set_apply(Expr::input()))
        .unwrap()
        .is_dne());
    // Binary set ops: either null operand wins.
    let s = Expr::lit(Value::set([Value::int(1)]));
    assert!(f.run(&s.clone().add_union(dne.clone())).unwrap().is_dne());
    assert!(f.run(&unk.clone().diff(s.clone())).unwrap().is_unk());
}

#[test]
fn set_of_dne_is_empty_and_arr_of_dne_is_empty() {
    let mut f = Fixture::new();
    let made = f.run(&Expr::lit(Value::dne()).make_set()).unwrap();
    assert!(made.as_set().unwrap().is_empty());
    let arr = f.run(&Expr::lit(Value::dne()).make_arr()).unwrap();
    assert!(arr.as_array().unwrap().is_empty());
    // unk, by contrast, is a real occurrence.
    let kept = f.run(&Expr::lit(Value::unk()).make_set()).unwrap();
    assert_eq!(kept.as_set().unwrap().len(), 1);
}

#[test]
fn comp_truth_values_map_to_input_unk_dne() {
    let mut f = Fixture::new();
    let five = Expr::int(5);
    let t = five
        .clone()
        .comp(Pred::cmp(Expr::input(), CmpOp::Eq, Expr::int(5)));
    assert_eq!(f.run(&t).unwrap(), Value::int(5));
    let fls = five
        .clone()
        .comp(Pred::cmp(Expr::input(), CmpOp::Eq, Expr::int(6)));
    assert!(f.run(&fls).unwrap().is_dne());
    let u = five.comp(Pred::cmp(Expr::input(), CmpOp::Eq, Expr::lit(Value::unk())));
    assert!(f.run(&u).unwrap().is_unk());
}

#[test]
fn selection_keeps_unk_occurrences_per_comp_semantics() {
    // σ over {1, 2} where x = unk: both comparisons are U → {unk, unk}.
    let mut f = Fixture::new();
    let s = Expr::lit(Value::set([Value::int(1), Value::int(2)]));
    let sel = s.select(Pred::cmp(Expr::input(), CmpOp::Eq, Expr::lit(Value::unk())));
    let out = f.run(&sel).unwrap();
    assert_eq!(out.as_set().unwrap().count(&Value::unk()), 2);
}

#[test]
fn and_short_circuits_on_false() {
    // F ∧ (error) must not evaluate the right side.
    let mut f = Fixture::new();
    let bad_right = Pred::cmp(Expr::named("NoSuchObject"), CmpOp::Eq, Expr::int(1));
    let p = Pred::cmp(Expr::int(1), CmpOp::Eq, Expr::int(2)).and(bad_right);
    let e = Expr::int(9).comp(p);
    assert!(f.run(&e).unwrap().is_dne());
}

#[test]
fn kleene_or_via_de_morgan() {
    assert_eq!(Truth::U.or(Truth::T), Truth::T);
    assert_eq!(Truth::U.or(Truth::F), Truth::U);
}

// ---------------- binder discipline ----------------

#[test]
fn unbound_input_is_an_error() {
    let mut f = Fixture::new();
    match f.run(&Expr::input()) {
        Err(EvalError::UnboundInput(0)) => {}
        other => panic!("expected UnboundInput, got {other:?}"),
    }
    // Depth beyond the environment also fails.
    let e = Expr::lit(Value::set([Value::int(1)])).set_apply(Expr::input_at(3));
    assert!(matches!(f.run(&e), Err(EvalError::UnboundInput(3))));
}

#[test]
fn nested_binders_resolve_by_depth() {
    // For each x in {10, 20}: sum over {1, 2} of (x + y).
    let mut f = Fixture::new();
    let inner = Expr::lit(Value::set([Value::int(1), Value::int(2)])).set_apply(Expr::call(
        Func::Add,
        vec![Expr::input_at(1), Expr::input()],
    ));
    let e = Expr::lit(Value::set([Value::int(10), Value::int(20)]))
        .set_apply(Expr::call(Func::Sum, vec![inner]));
    let out = f.run(&e).unwrap();
    assert_eq!(out, Value::set([Value::int(23), Value::int(43)]));
}

#[test]
fn comp_binds_its_whole_input_not_occurrences() {
    // COMP over a multiset: INPUT is the whole set (membership test).
    let mut f = Fixture::new();
    let s = Expr::lit(Value::set([Value::int(1), Value::int(2)]));
    let e = s.comp(Pred::cmp(Expr::int(2), CmpOp::In, Expr::input()));
    let out = f.run(&e).unwrap();
    assert_eq!(out, Value::set([Value::int(1), Value::int(2)]));
}

// ---------------- sort errors ----------------

#[test]
fn sort_mismatches_are_reported_with_operator_names() {
    let mut f = Fixture::new();
    let tuple = Expr::lit(Value::tuple([("a", Value::int(1))]));
    match f.run(&tuple.clone().dup_elim()) {
        Err(EvalError::SortMismatch {
            op: "DE",
            expected: "multiset",
            ..
        }) => {}
        other => panic!("unexpected: {other:?}"),
    }
    match f.run(&tuple.clone().arr_extract(1)) {
        Err(EvalError::SortMismatch {
            op: "ARR_EXTRACT", ..
        }) => {}
        other => panic!("unexpected: {other:?}"),
    }
    // `in` with a non-multiset right operand.
    let e = Expr::int(1).comp(Pred::cmp(Expr::input(), CmpOp::In, Expr::int(2)));
    assert!(matches!(f.run(&e), Err(EvalError::SortMismatch { .. })));
    // SET_COLLAPSE of a multiset of scalars.
    let flat = Expr::lit(Value::set([Value::int(1)])).set_collapse();
    assert!(f.run(&flat).is_err());
}

#[test]
fn division_by_zero_and_arity_errors() {
    let mut f = Fixture::new();
    let div = Expr::call(Func::Div, vec![Expr::int(1), Expr::int(0)]);
    assert!(matches!(f.run(&div), Err(EvalError::DivideByZero)));
    let arity = Expr::call(Func::Min, vec![]);
    assert!(matches!(f.run(&arity), Err(EvalError::Arity { .. })));
}

// ---------------- dispatch ----------------

fn person(name: &str) -> Value {
    Value::tuple([("name", Value::str(name))])
}
fn employee(name: &str, salary: i32) -> Value {
    Value::tuple([("name", Value::str(name)), ("salary", Value::int(salary))])
}
fn manager(name: &str, salary: i32, level: i32) -> Value {
    Value::tuple([
        ("name", Value::str(name)),
        ("salary", Value::int(salary)),
        ("level", Value::int(level)),
    ])
}

#[test]
fn switch_falls_back_to_nearest_ancestor_arm() {
    let mut f = Fixture::new();
    f.cat.insert(
        "P".into(),
        Value::set([person("p"), employee("e", 1), manager("m", 2, 3)]),
    );
    // Arms only for Person and Employee: Manager resolves to Employee
    // (nearest ancestor), not Person.
    let e = Expr::SetApplySwitch {
        input: Box::new(Expr::named("P")),
        table: vec![
            ("Person".into(), Expr::str("person-arm")),
            ("Employee".into(), Expr::str("employee-arm")),
        ],
    };
    let out = f.run(&e).unwrap();
    let set = out.as_set().unwrap();
    assert_eq!(set.count(&Value::str("person-arm")), 1);
    assert_eq!(set.count(&Value::str("employee-arm")), 2);
}

#[test]
fn switch_with_no_applicable_arm_errors() {
    let mut f = Fixture::new();
    f.cat.insert("P".into(), Value::set([person("p")]));
    let e = Expr::SetApplySwitch {
        input: Box::new(Expr::named("P")),
        table: vec![("Employee".into(), Expr::str("x"))],
    };
    assert!(matches!(f.run(&e), Err(EvalError::NoDispatchArm { .. })));
}

#[test]
fn only_types_filters_ignore_non_matching_elements() {
    let mut f = Fixture::new();
    f.cat.insert(
        "P".into(),
        Value::set([person("p"), employee("e", 1), manager("m", 2, 3)]),
    );
    // Exactly-Employee only: the manager is NOT an exact Employee.
    let e = Expr::named("P").set_apply_only(["Employee"], Expr::input().extract("name"));
    let out = f.run(&e).unwrap();
    assert_eq!(out, Value::set([Value::str("e")]));
    // Person/Manager multi-filter.
    let e2 = Expr::named("P").set_apply_only(["Person", "Manager"], Expr::input().extract("name"));
    let out2 = f.run(&e2).unwrap();
    assert_eq!(out2, Value::set([Value::str("p"), Value::str("m")]));
}

#[test]
fn ref_elements_dispatch_via_store_exact_type() {
    let mut f = Fixture::new();
    let emp_ty = f.reg.lookup("Employee").unwrap();
    let oid = f.store.create(&f.reg, emp_ty, employee("e", 9)).unwrap();
    f.cat.insert("R".into(), Value::set([Value::Ref(oid)]));
    let e = Expr::named("R").set_apply_only(["Employee"], Expr::input().deref().extract("salary"));
    assert_eq!(f.run(&e).unwrap(), Value::set([Value::int(9)]));
    // Filtering for Person must skip the Employee-minted ref (exact ≠).
    let e2 = Expr::named("R").set_apply_only(["Person"], Expr::input());
    assert!(f.run(&e2).unwrap().as_set().unwrap().is_empty());
}

// ---------------- references & counters ----------------

#[test]
fn make_ref_validates_against_the_target_domain() {
    let mut f = Fixture::new();
    let ok = Expr::lit(person("p")).make_ref("Person");
    assert!(matches!(f.run(&ok).unwrap(), Value::Ref(_)));
    let bad = Expr::int(1).make_ref("Person");
    assert!(matches!(f.run(&bad), Err(EvalError::Type(_))));
    let unknown = Expr::lit(person("p")).make_ref("Nope");
    assert!(f.run(&unknown).is_err());
}

#[test]
fn deref_of_deleted_object_is_a_dangling_error() {
    let mut f = Fixture::new();
    let ty = f.reg.lookup("Person").unwrap();
    let oid = f.store.create(&f.reg, ty, person("p")).unwrap();
    f.store.delete(oid).unwrap();
    f.cat.insert("X".into(), Value::Ref(oid));
    assert!(matches!(
        f.run(&Expr::named("X").deref()),
        Err(EvalError::Type(excess_types::TypeError::DanglingOid(_)))
    ));
}

#[test]
fn counters_count_exactly_what_happened() {
    let mut f = Fixture::new();
    let ty = f.reg.lookup("Person").unwrap();
    let oids: Vec<Value> = (0..4)
        .map(|i| {
            Value::Ref(
                f.store
                    .create(&f.reg, ty, person(&format!("p{i}")))
                    .unwrap(),
            )
        })
        .collect();
    f.cat.insert("R".into(), Value::set(oids));
    let e = Expr::named("R")
        .set_apply(Expr::input().deref().extract("name"))
        .dup_elim();
    let (_, c) = f.run_counting(&e);
    assert_eq!(c.occurrences_scanned, 4);
    assert_eq!(c.derefs, 4);
    assert_eq!(c.de_input_occurrences, 4);
    assert_eq!(c.named_object_scans, 1);
    assert_eq!(c.oids_minted, 0);
}

#[test]
fn arr_extract_bounds_and_last() {
    let mut f = Fixture::new();
    let a = Expr::lit(Value::array([Value::int(1), Value::int(2)]));
    assert_eq!(
        f.run(&Expr::ArrExtract(Box::new(a.clone()), Bound::Last))
            .unwrap(),
        Value::int(2)
    );
    assert!(f.run(&a.clone().arr_extract(5)).unwrap().is_dne());
    let empty = Expr::lit(Value::array([]));
    assert!(f
        .run(&Expr::ArrExtract(Box::new(empty), Bound::Last))
        .unwrap()
        .is_dne());
}

#[test]
fn group_drops_occurrences_with_dne_keys() {
    // Grouping by a key that is dne for some occurrences drops them.
    let mut f = Fixture::new();
    let s = Expr::lit(Value::set([
        Value::tuple([("k", Value::int(1))]),
        Value::tuple([("k", Value::dne())]),
    ]));
    let g = s.group_by(Expr::input().extract("k"));
    let out = f.run(&g).unwrap();
    assert_eq!(out.as_set().unwrap().len(), 1);
}
