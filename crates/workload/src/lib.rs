//! # excess-workload — parameterised Figure 1 university database
//!
//! Deterministic, seeded generator for the paper's example database plus
//! the canned query texts for every experiment (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod documents;
pub mod params;
pub mod queries;
pub mod university;

pub use documents::{generate_documents, DocumentParams, DocumentStore};
pub use params::UniversityParams;
pub use university::{generate, University, FIGURE1_DDL};
