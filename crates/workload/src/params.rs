//! Workload knobs.
//!
//! Each knob maps to a lever in one of the paper's performance arguments
//! (see DESIGN.md's experiment index): duplication factor for Figures 6–8,
//! floor/city selectivity for Figures 4 and 9–11, `sub_ords` size and the
//! exact-type mix for Figure 5.

/// Parameters of the Figure 1 university database generator.
#[derive(Debug, Clone, Copy)]
pub struct UniversityParams {
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Number of `Department` objects.
    pub departments: usize,
    /// Number of `Employee` objects.
    pub employees: usize,
    /// Number of `Student` objects.
    pub students: usize,
    /// Number of plain `Person` structures (only in the by-value `P` set).
    pub plain_persons: usize,
    /// Children per employee (exact).
    pub kids_per_employee: usize,
    /// Subordinates per employee (exact; drawn from earlier employees).
    pub sub_ords_per_employee: usize,
    /// Number of distinct advisor names students draw from — the
    /// duplication-factor lever for Example 1 (Figures 6–8): fewer names
    /// ⇒ more duplicate (dept, advisor) pairs.
    pub distinct_advisors: usize,
    /// Number of distinct floors (uniform); `floor = k` predicates then
    /// have selectivity ≈ 1/floors.
    pub floors: usize,
    /// Fraction of employees living in Madison (Figure 4 selectivity).
    pub madison_fraction: f64,
    /// Number of distinct division names for departments.
    pub divisions: usize,
}

impl Default for UniversityParams {
    fn default() -> Self {
        UniversityParams {
            seed: 0x00EC_CE55,
            departments: 10,
            employees: 200,
            students: 200,
            plain_persons: 100,
            kids_per_employee: 2,
            sub_ords_per_employee: 4,
            distinct_advisors: 20,
            floors: 5,
            madison_fraction: 0.2,
            divisions: 4,
        }
    }
}

impl UniversityParams {
    /// A tiny database for unit tests.
    pub fn tiny() -> Self {
        UniversityParams {
            departments: 3,
            employees: 12,
            students: 10,
            plain_persons: 5,
            kids_per_employee: 2,
            sub_ords_per_employee: 2,
            distinct_advisors: 4,
            floors: 3,
            madison_fraction: 0.25,
            divisions: 2,
            ..Default::default()
        }
    }

    /// Scale the population sizes by a factor (benchmark sweeps).
    pub fn scaled(mut self, factor: usize) -> Self {
        self.departments = (self.departments * factor).max(1);
        self.employees = (self.employees * factor).max(1);
        self.students = (self.students * factor).max(1);
        self.plain_persons = (self.plain_persons * factor).max(1);
        self
    }
}
