//! A structured office-document workload.
//!
//! Section 1 positions the EXCESS arrays against \[Guti89\]'s NST algebra
//! "for structured office documents" — ordered, nested sequences.  This
//! workload builds exactly that shape in EXTRA:
//!
//! ```text
//! define type Paragraph: (style: char[], words: int4, text: char[])
//! define type Section:   (title: char[], paras: array of Paragraph)
//! define type Document:  (title: char[], author: ref Person,
//!                         sections: array of Section)
//! create Docs: { ref Document }
//! ```
//!
//! so the array operators (ARR_APPLY, SUBARR, ARR_EXTRACT, ARR_COLLAPSE)
//! have a realistic, order-significant substrate to work on.

use crate::params::UniversityParams;
use excess_db::{Database, DbResult};
use excess_types::{Oid, SchemaType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Document-workload knobs.
#[derive(Debug, Clone, Copy)]
pub struct DocumentParams {
    /// RNG seed.
    pub seed: u64,
    /// Number of documents.
    pub documents: usize,
    /// Sections per document.
    pub sections_per_doc: usize,
    /// Paragraphs per section.
    pub paras_per_section: usize,
    /// Number of distinct authors.
    pub authors: usize,
}

impl Default for DocumentParams {
    fn default() -> Self {
        DocumentParams {
            seed: UniversityParams::default().seed,
            documents: 50,
            sections_per_doc: 5,
            paras_per_section: 8,
            authors: 10,
        }
    }
}

/// The generated document database.
pub struct DocumentStore {
    /// The populated database.
    pub db: Database,
    /// OIDs of the Document objects, in creation order.
    pub documents: Vec<Oid>,
}

/// Generate the document database.
pub fn generate_documents(p: &DocumentParams) -> DbResult<DocumentStore> {
    let mut db = Database::new();
    db.execute(
        r#"define type Author: (name: char[])
           define type Paragraph: (style: char[], words: int4, text: char[])
           define type Section: (title: char[], paras: array of Paragraph)
           define type Document: (title: char[], author: ref Author,
                                  sections: array of Section)
           create Docs: { ref Document }"#,
    )?;
    let mut rng = StdRng::seed_from_u64(p.seed);
    let author_ty = db.registry().lookup("Author")?;
    let doc_ty = db.registry().lookup("Document")?;
    let authors: Vec<Oid> = (0..p.authors.max(1))
        .map(|i| {
            db.store_mut().create_unchecked(
                author_ty,
                Value::tuple([("name", Value::str(format!("au{i}")))]),
            )
        })
        .collect();
    let styles = ["body", "quote", "code", "heading"];
    let mut documents = Vec::with_capacity(p.documents);
    for d in 0..p.documents {
        let sections: Vec<Value> = (0..p.sections_per_doc)
            .map(|s| {
                let paras: Vec<Value> = (0..p.paras_per_section)
                    .map(|q| {
                        Value::tuple([
                            ("style", Value::str(styles[rng.gen_range(0..styles.len())])),
                            ("words", Value::int(rng.gen_range(5..120))),
                            ("text", Value::str(format!("d{d}s{s}p{q}"))),
                        ])
                    })
                    .collect();
                Value::tuple([
                    ("title", Value::str(format!("Section {s} of d{d}"))),
                    ("paras", Value::array(paras)),
                ])
            })
            .collect();
        let doc = Value::tuple([
            ("title", Value::str(format!("Doc {d}"))),
            ("author", Value::Ref(authors[d % authors.len()])),
            ("sections", Value::array(sections)),
        ]);
        documents.push(db.store_mut().create_unchecked(doc_ty, doc));
    }
    db.put_object(
        "Docs",
        SchemaType::set(SchemaType::reference("Document")),
        Value::set(documents.iter().map(|o| Value::Ref(*o))),
    );
    db.collect_stats();
    Ok(DocumentStore { db, documents })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_ordered_nesting() {
        let ds = generate_documents(&DocumentParams {
            documents: 3,
            sections_per_doc: 2,
            paras_per_section: 4,
            ..Default::default()
        })
        .unwrap();
        let mut db = ds.db;
        // First paragraph of the first section of every document, in order.
        let out = db
            .execute("retrieve (D.sections[1].paras[1].text) from D in Docs")
            .unwrap();
        assert_eq!(out.as_set().unwrap().len(), 3);
        for (v, _) in out.as_set().unwrap().iter_counted() {
            assert!(v.as_str().unwrap().ends_with("s0p0"));
        }
    }

    #[test]
    fn array_navigation_preserves_order() {
        let ds = generate_documents(&DocumentParams {
            documents: 1,
            sections_per_doc: 3,
            paras_per_section: 2,
            ..Default::default()
        })
        .unwrap();
        let mut db = ds.db;
        // Section titles of the single doc, as an ordered array.
        let out = db
            .execute("retrieve (the(Docs).sections.title)")
            .unwrap_or_else(|e| panic!("{e}"));
        let arr = out.as_array().expect("ordered array");
        let titles: Vec<&str> = arr.iter().map(|v| v.as_str().unwrap()).collect();
        assert_eq!(
            titles,
            vec!["Section 0 of d0", "Section 1 of d0", "Section 2 of d0"]
        );
    }

    #[test]
    fn word_counts_via_nested_array_aggregation() {
        let ds = generate_documents(&DocumentParams::default()).unwrap();
        let mut db = ds.db;
        let out = db
            .execute(
                "retrieve (D.title, total = sum(collapse(D.sections.paras).words))
                 from D in Docs",
            )
            .unwrap();
        let set = out.as_set().unwrap();
        assert_eq!(set.len() as usize, DocumentParams::default().documents);
        for (row, _) in set.iter_counted() {
            let total = row
                .as_tuple()
                .unwrap()
                .get("total")
                .unwrap()
                .as_int()
                .unwrap();
            // 5 sections × 8 paras × words ∈ [5, 120)
            assert!((5 * 8 * 5..5 * 8 * 120).contains(&total), "{total}");
        }
    }
}
