//! The Figure 1 university database, generated synthetically.
//!
//! Substitution note (DESIGN.md): the paper has no dataset; every
//! performance argument it makes is parameterised by duplication factor,
//! selectivity, nested-set size, and type mix, which
//! [`crate::params::UniversityParams`] controls directly.
//!
//! Beyond Figure 1's schema we add two fields the paper's examples assume:
//!
//! * `Student.advisor_name: char[]` — Section 5 Example 1 says "assume the
//!   advisor field of Student is a value (the advisor's name) instead of a
//!   reference"; keeping both lets one database serve both examples;
//! * the by-value set `P : { Person }` from Section 4, holding a mix of
//!   exact `Person`/`Employee`/`Student` structures for dispatch tests.

use crate::params::UniversityParams;
use excess_db::{Database, DbResult};
use excess_types::{Date, Oid, SchemaType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to the generated database plus the OIDs it created (useful for
/// direct store manipulation in tests).
pub struct University {
    /// The populated database.
    pub db: Database,
    /// OIDs of the Department objects.
    pub departments: Vec<Oid>,
    /// OIDs of the Employee objects.
    pub employees: Vec<Oid>,
    /// OIDs of the Student objects.
    pub students: Vec<Oid>,
}

/// The Figure 1 DDL (with the documented `advisor_name` addition).
pub const FIGURE1_DDL: &str = r#"
define type Person:
  ( ssnum: int4, name: char[], street: char[20], city: char[10],
    zip: int4, birthday: Date )

define type Employee:
  ( jobtitle: char[20], dept: ref Department, manager: ref Employee,
    sub_ords: { ref Employee }, salary: int4, kids: { Person } )
  inherits Person

define type Student:
  ( gpa: float4, dept: ref Department, advisor: ref Employee,
    advisor_name: char[] )
  inherits Person

define type Department:
  ( division: char[], name: char[], floor: int4,
    employees: { ref Employee } )

create Employees: { ref Employee }
create Students: { ref Student }
create Departments: { ref Department }
create TopTen: array [1..10] of ref Employee
create P: { Person }
"#;

// `Department` is referenced by `Employee` before it is defined; EXTRA's
// DDL in Figure 1 has the same forward reference.  The registry resolves
// `ref` targets lazily, so definition order inside the DDL only matters
// for `inherits`; we re-order Department before Employee when executing.

/// Generate the university database.
pub fn generate(p: &UniversityParams) -> DbResult<University> {
    let mut db = Database::new();
    // Figure 1, with Department first so `ref Department` targets resolve
    // at object-creation time.
    db.execute(
        r#"define type Person:
             ( ssnum: int4, name: char[], street: char[20], city: char[10],
               zip: int4, birthday: Date )"#,
    )?;
    db.execute(
        r#"define type Department:
             ( division: char[], name: char[], floor: int4,
               employees: { ref Employee } )"#,
    )?;
    db.execute(
        r#"define type Employee:
             ( jobtitle: char[20], dept: ref Department, manager: ref Employee,
               sub_ords: { ref Employee }, salary: int4, kids: { Person } )
             inherits Person"#,
    )?;
    db.execute(
        r#"define type Student:
             ( gpa: float4, dept: ref Department, advisor: ref Employee,
               advisor_name: char[] )
             inherits Person"#,
    )?;
    db.execute("create Employees: { ref Employee }")?;
    db.execute("create Students: { ref Student }")?;
    db.execute("create Departments: { ref Department }")?;
    db.execute("create TopTen: array [1..10] of ref Employee")?;
    db.execute("create P: { Person }")?;

    let mut rng = StdRng::seed_from_u64(p.seed);
    let dept_ty = db.registry().lookup("Department")?;
    let emp_ty = db.registry().lookup("Employee")?;
    let stu_ty = db.registry().lookup("Student")?;

    // Departments (employees back-refs filled in afterwards).
    let mut departments = Vec::with_capacity(p.departments);
    for i in 0..p.departments {
        let v = Value::tuple([
            (
                "division",
                Value::str(format!("Division{}", i % p.divisions.max(1))),
            ),
            ("name", Value::str(format!("Dept{i}"))),
            ("floor", Value::int((i % p.floors.max(1)) as i32 + 1)),
            ("employees", Value::set([])),
        ]);
        departments.push(db.store_mut().create_unchecked(dept_ty, v));
    }

    // Employees.
    let mut employees: Vec<Oid> = Vec::with_capacity(p.employees);
    for i in 0..p.employees {
        let dept = departments[rng.gen_range(0..departments.len().max(1))];
        let manager = if employees.is_empty() {
            Value::dne()
        } else {
            Value::Ref(employees[rng.gen_range(0..employees.len())])
        };
        let sub_ords: Vec<Value> = (0..p.sub_ords_per_employee.min(employees.len()))
            .map(|_| Value::Ref(employees[rng.gen_range(0..employees.len())]))
            .collect();
        let kids: Vec<Value> = (0..p.kids_per_employee)
            .map(|k| person_value(&mut rng, p, &format!("Kid{i}_{k}")))
            .collect();
        let mut fields = person_fields(&mut rng, p, &format!("Emp{i}"));
        fields.extend([
            ("jobtitle".to_string(), Value::str(format!("Job{}", i % 7))),
            ("dept".to_string(), Value::Ref(dept)),
            ("manager".to_string(), manager),
            ("sub_ords".to_string(), Value::set(sub_ords)),
            (
                "salary".to_string(),
                Value::int(30_000 + (i as i32 % 50) * 1000),
            ),
            ("kids".to_string(), Value::set(kids)),
        ]);
        employees.push(
            db.store_mut()
                .create_unchecked(emp_ty, Value::tuple(fields)),
        );
    }

    // Back-fill Department.employees.
    for (di, d) in departments.iter().enumerate() {
        let members: Vec<Value> = employees
            .iter()
            .enumerate()
            .filter(|(ei, _)| ei % departments.len().max(1) == di)
            .map(|(_, o)| Value::Ref(*o))
            .collect();
        let mut v = db.store().deref(*d)?.clone();
        if let Value::Tuple(t) = &mut v {
            let mut fields = t.clone().into_fields();
            for f in &mut fields {
                if f.0 == "employees" {
                    f.1 = Value::set(members.clone());
                }
            }
            v = Value::Tuple(excess_types::Tuple::from_fields(fields));
        }
        db.update_stored(*d, v)?;
    }

    // Students.
    let mut students = Vec::with_capacity(p.students);
    for i in 0..p.students {
        let dept = departments[rng.gen_range(0..departments.len().max(1))];
        let advisor_idx = rng.gen_range(0..employees.len().max(1));
        // Advisor *names* are drawn from a small pool to control the
        // Example 1 duplication factor.
        let advisor_name = format!("Emp{}", advisor_idx % p.distinct_advisors.max(1));
        let mut fields = person_fields(&mut rng, p, &format!("Stu{i}"));
        fields.extend([
            (
                "gpa".to_string(),
                Value::float(2.0 + f64::from(i as u32 % 20) / 10.0),
            ),
            ("dept".to_string(), Value::Ref(dept)),
            ("advisor".to_string(), Value::Ref(employees[advisor_idx])),
            ("advisor_name".to_string(), Value::str(advisor_name)),
        ]);
        students.push(
            db.store_mut()
                .create_unchecked(stu_ty, Value::tuple(fields)),
        );
    }

    // Named top-level objects.
    let ref_set = |name: &str, oids: &[Oid]| {
        (
            SchemaType::set(SchemaType::reference(name)),
            Value::set(oids.iter().map(|o| Value::Ref(*o))),
        )
    };
    let (s, v) = ref_set("Employee", &employees);
    db.put_object("Employees", s, v);
    let (s, v) = ref_set("Student", &students);
    db.put_object("Students", s, v);
    let (s, v) = ref_set("Department", &departments);
    db.put_object("Departments", s, v);
    let top: Vec<Value> = (0..10)
        .map(|i| {
            employees
                .get(i)
                .map(|o| Value::Ref(*o))
                .unwrap_or_else(Value::dne)
        })
        .collect();
    db.put_object(
        "TopTen",
        SchemaType::fixed_array(SchemaType::reference("Employee"), 10),
        Value::array(top),
    );

    // The Section 4 by-value set P : { Person } with a mixed type profile:
    // plain persons, employee-shaped, and student-shaped structures.
    let mut p_elems: Vec<Value> = Vec::new();
    for i in 0..p.plain_persons {
        p_elems.push(person_value(&mut rng, p, &format!("Plain{i}")));
    }
    for o in employees.iter().take(p.employees / 2) {
        p_elems.push(db.store().deref(*o)?.clone());
    }
    for o in students.iter().take(p.students / 2) {
        p_elems.push(db.store().deref(*o)?.clone());
    }
    db.put_object(
        "P",
        SchemaType::set(SchemaType::named("Person")),
        Value::set(p_elems),
    );

    db.collect_stats();
    Ok(University {
        db,
        departments,
        employees,
        students,
    })
}

fn person_fields(rng: &mut StdRng, p: &UniversityParams, name: &str) -> Vec<(String, Value)> {
    let city = if rng.gen_bool(p.madison_fraction.clamp(0.0, 1.0)) {
        "Madison"
    } else {
        "Milwaukee"
    };
    let birthday = Date::new(
        1940 + rng.gen_range(0..45),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
    )
    .expect("valid date");
    vec![
        (
            "ssnum".to_string(),
            Value::int(rng.gen_range(100_000_000..999_999_999)),
        ),
        ("name".to_string(), Value::str(name)),
        (
            "street".to_string(),
            Value::str(format!("{} Main St", rng.gen_range(1..999))),
        ),
        ("city".to_string(), Value::str(city)),
        (
            "zip".to_string(),
            Value::int(53_700 + rng.gen_range(0..100)),
        ),
        ("birthday".to_string(), Value::date(birthday)),
    ]
}

fn person_value(rng: &mut StdRng, p: &UniversityParams, name: &str) -> Value {
    Value::tuple(person_fields(rng, p, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_database() {
        let u = generate(&UniversityParams::tiny()).unwrap();
        assert_eq!(u.employees.len(), 12);
        assert_eq!(u.students.len(), 10);
        let emps = u.db.catalog().value("Employees").unwrap();
        assert_eq!(emps.as_set().unwrap().len() as usize, 12);
        let top = u.db.catalog().value("TopTen").unwrap();
        assert_eq!(top.as_array().unwrap().len(), 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&UniversityParams::tiny()).unwrap();
        let b = generate(&UniversityParams::tiny()).unwrap();
        assert_eq!(
            a.db.catalog().value("P").unwrap(),
            b.db.catalog().value("P").unwrap()
        );
    }

    #[test]
    fn every_reference_resolves() {
        let u = generate(&UniversityParams::tiny()).unwrap();
        for name in ["Employees", "Students", "Departments"] {
            let set =
                u.db.catalog()
                    .value(name)
                    .unwrap()
                    .as_set()
                    .unwrap()
                    .clone();
            for (v, _) in set.iter_counted() {
                let oid = v.as_ref_oid().expect("ref element");
                u.db.store().deref(oid).expect("live object");
            }
        }
    }

    #[test]
    fn p_mixes_exact_types() {
        let u = generate(&UniversityParams::tiny()).unwrap();
        let p = u.db.catalog().value("P").unwrap().as_set().unwrap().clone();
        let reg = u.db.registry();
        let mut kinds = std::collections::HashSet::new();
        for (v, _) in p.iter_counted() {
            if let Some(t) = u.db.exact_type_of(v) {
                kinds.insert(reg.name_of(t).to_string());
            }
        }
        assert!(kinds.contains("Person"));
        assert!(kinds.contains("Employee"));
        assert!(kinds.contains("Student"));
    }

    #[test]
    fn stats_reflect_population() {
        let u = generate(&UniversityParams::tiny()).unwrap();
        let s = u.db.statistics();
        assert_eq!(s.object("Employees").rows, 12.0);
        assert!(s.type_fractions.contains_key("Student"));
    }
}
