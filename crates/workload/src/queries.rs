//! Canned EXCESS texts for every paper query and method, keyed by the
//! experiment index in DESIGN.md.

/// Section 2.2, first example: children of employees in 2nd-floor
/// departments.
pub const SECTION2_KIDS: &str = r#"
range of E is Employees
retrieve (C.name) from C in E.kids where E.dept.floor = 2
"#;

/// Section 2.2, second example: per-employee minimum kid age on the same
/// floor (correlated aggregate).
pub const SECTION2_MIN_AGE: &str = r#"
range of EMP is Employees
retrieve (EMP.name, min(E.kids.age
   from E in Employees
   where E.dept.floor = EMP.dept.floor))
"#;

/// Figure 3: name and salary of the 5th TopTen employee.
pub const FIGURE3: &str = "retrieve (TopTen[5].name, TopTen[5].salary)";

/// Figure 4: functional join — department names of Madison employees.
pub const FIGURE4: &str = r#"retrieve (Employees.dept.name) where Employees.city = "Madison""#;

/// Section 5 Example 1 (Figures 6–8): advisors grouped by student dept,
/// using the *value* advisor field.
pub const EXAMPLE1: &str = r#"
range of S is Students
range of E is Employees
retrieve unique (S.dept.name, E.name) by S.dept where S.advisor_name = E.name
"#;

/// Section 5 Example 2 (Figures 9–11): student names by division for
/// 5th-floor departments.
pub const EXAMPLE2: &str = r#"
range of S is Students
retrieve (S.name) by S.dept.division where S.dept.floor = 5
"#;

/// Section 4's `get_ssnum` method (the inlining example).
pub const DEFINE_GET_SSNUM: &str = r#"
define Employee function get_ssnum (kname: char[]) returns int4
{
  retrieve (this.kids.ssnum) where (this.kids.name = kname)
}
"#;

/// Section 4's `boss` method family: "returns the name of the person in
/// charge of p's life" — trivial bodies, where the switch-table approach
/// should win.
pub const DEFINE_BOSS: &str = r#"
define Person function boss () returns char[]
{ retrieve (this.name) }

define Employee function boss () returns char[]
{ retrieve (this.manager.name) }

define Student function boss () returns char[]
{ retrieve (this.advisor.name) }
"#;

/// Invoke `boss` over the heterogeneous by-value set P.
pub const QUERY_BOSS: &str = "retrieve (x.boss()) from x in P";

/// The expensive overridden method: bodies scan large nested sets
/// (`sub_ords` for employees) — where the ⊎-based plan should win.
pub const DEFINE_WORKLOAD: &str = r#"
define Person function load () returns int4
{ retrieve (0) }

define Employee function load () returns int4
{ retrieve (count(s.salary from s in this.sub_ords where s.salary > 0)) }

define Student function load () returns int4
{ retrieve (count(e.salary from e in this.dept.employees where e.salary > 0)) }
"#;

/// Invoke `load` over P.
pub const QUERY_WORKLOAD: &str = "retrieve (x.load()) from x in P";
