//! # excess — facade crate
//!
//! Re-exports the whole EXCESS workspace (see DESIGN.md) behind one crate:
//!
//! * [`types`] — the EXTRA type system: schemas, values, inheritance, OIDs,
//!   the object store;
//! * [`algebra`] — the EXCESS algebra: the 23 primitive operators, derived
//!   operators, and the evaluator;
//! * [`optimizer`] — the transformation-rule catalogue and cost-based
//!   rewrite engine;
//! * [`lang`] — the EXCESS query language: parser, EXCESS→algebra
//!   translator, algebra→EXCESS decompiler, and method registry;
//! * [`exec`] — the partition-parallel execution engine;
//! * [`telemetry`] — cross-query telemetry: metric registry, latency
//!   histograms, query spans, flight recorder, misestimation feedback;
//! * [`db`] — the end-to-end [`db::Database`] engine, plus the session
//!   layer: snapshot-isolated [`db::Session`]s over a [`db::VersionedDb`]
//!   with a single committer thread;
//! * [`server`] — a line-delimited TCP query server over those sessions;
//! * [`workload`] — the Figure 1 university-database generator used by the
//!   examples and benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use excess::db::Database;
//!
//! let mut db = Database::new();
//! db.execute("define type Dept: (name: char[], floor: int4)").unwrap();
//! db.execute("create Depts: { Dept }").unwrap();
//! db.execute("append to Depts (name: \"CS\", floor: 2)").unwrap();
//! let out = db.execute("retrieve (D.name) from D in Depts where D.floor = 2").unwrap();
//! assert_eq!(out.to_string(), "{ \"CS\" }");
//! ```

#![forbid(unsafe_code)]

pub use excess_core as algebra;
pub use excess_db as db;
pub use excess_exec as exec;
pub use excess_lang as lang;
pub use excess_optimizer as optimizer;
pub use excess_server as server;
pub use excess_telemetry as telemetry;
pub use excess_types as types;
pub use excess_workload as workload;
