//! The equipollence theorem (Section 3.4), tested constructively.
//!
//! Direction i (EXCESS → algebra) is the translator, exercised throughout
//! the test suite.  Direction ii (algebra → EXCESS) is the decompiler.
//! Here we close the loop: for a battery of algebra plans covering every
//! primitive operator, `decompile` to EXCESS text, re-`translate`, and
//! check both plans *evaluate to the same value* on the university
//! database.  For plans that mint OIDs the comparison is modulo object
//! identity (`canonical_form`), since fresh OIDs are opaque.

use excess::algebra::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess::algebra::{canonical_form, Counters};
use excess::db::Database;
use excess::lang::decompile;
use excess::types::{SchemaType, Value};
use excess::workload::{generate, UniversityParams};

fn database() -> Database {
    let mut db = generate(&UniversityParams::tiny()).unwrap().db;
    db.optimize = false;
    // Extra fixture objects exercising every sort.
    db.put_object(
        "Nums",
        SchemaType::set(SchemaType::int4()),
        Value::set([1, 1, 2, 3, 3, 3].map(Value::int)),
    );
    db.put_object(
        "NumsB",
        SchemaType::set(SchemaType::int4()),
        Value::set([2, 3, 4].map(Value::int)),
    );
    db.put_object(
        "Xs",
        SchemaType::array(SchemaType::int4()),
        Value::array([5, 6, 7, 6].map(Value::int)),
    );
    db.put_object(
        "Ys",
        SchemaType::array(SchemaType::int4()),
        Value::array([8, 9].map(Value::int)),
    );
    db.put_object(
        "Pairs",
        SchemaType::set(SchemaType::tuple([
            ("a", SchemaType::int4()),
            ("b", SchemaType::chars()),
        ])),
        Value::set([
            Value::tuple([("a", Value::int(1)), ("b", Value::str("x"))]),
            Value::tuple([("a", Value::int(2)), ("b", Value::str("y"))]),
            Value::tuple([("a", Value::int(2)), ("b", Value::str("y"))]),
        ]),
    );
    db.put_object(
        "Nested",
        SchemaType::set(SchemaType::set(SchemaType::int4())),
        Value::set([
            Value::set([1, 2].map(Value::int)),
            Value::set([2].map(Value::int)),
        ]),
    );
    db.put_object(
        "NestedArr",
        SchemaType::array(SchemaType::array(SchemaType::int4())),
        Value::array([
            Value::array([1, 2].map(Value::int)),
            Value::array([3].map(Value::int)),
        ]),
    );
    db.put_object(
        "OneTup",
        SchemaType::tuple([("a", SchemaType::int4()), ("b", SchemaType::int4())]),
        Value::tuple([("a", Value::int(7)), ("b", Value::int(9))]),
    );
    db
}

/// The round trip for one plan.
fn round_trip(db: &mut Database, plan: &Expr, modulo_identity: bool) {
    // Both directions of the theorem produce statically verifiable plans:
    // the original algebra plan and the plan re-translated from its EXCESS
    // decompilation must carry zero error diagnostics.
    let report = db.verify_plan(plan);
    assert_eq!(
        report.error_count(),
        0,
        "plan {plan} has verifier errors:\n{}",
        report.render()
    );
    let direct = db
        .run_plan(plan)
        .unwrap_or_else(|e| panic!("direct eval of {plan}: {e}"));
    let text =
        decompile(plan, db.registry()).unwrap_or_else(|e| panic!("decompile of {plan}: {e}"));
    let replanned = db
        .plan_for(&format!("retrieve ({text})"))
        .unwrap_or_else(|e| panic!("re-planning of `{text}` (from {plan}): {e}"));
    let report = db.verify_plan(&replanned);
    assert_eq!(
        report.error_count(),
        0,
        "re-translated plan of `{text}` has verifier errors:\n{}",
        report.render()
    );
    let via_excess = db
        .execute(&format!("retrieve ({text})"))
        .unwrap_or_else(|e| panic!("re-translation of `{text}` (from {plan}): {e}"));
    if modulo_identity {
        let a = canonical_form(&direct, db.store());
        let b = canonical_form(&via_excess, db.store());
        assert_eq!(a, b, "plan {plan}\nvia: {text}");
    } else {
        assert_eq!(direct, via_excess, "plan {plan}\nvia: {text}");
    }
    // The induction measure exists and is finite (sanity of the proof's
    // structure).
    let _ = plan.operator_count();
}

fn nums() -> Expr {
    Expr::named("Nums")
}
fn numsb() -> Expr {
    Expr::named("NumsB")
}
fn xs() -> Expr {
    Expr::named("Xs")
}

#[test]
fn multiset_operator_cases() {
    let mut db = database();
    let cases = vec![
        nums().add_union(numsb()), // ⊎
        Expr::int(9).make_set(),   // SET
        nums().set_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(1)])), // SET_APPLY
        nums().group_by(Expr::input()), // GRP (identity key)
        Expr::named("Pairs").group_by(Expr::input().extract("a")), // GRP (field key)
        nums().dup_elim(),         // DE
        nums().diff(numsb()),      // −
        nums().cross(numsb()),     // ×
        Expr::named("Nested").set_collapse(), // SET_COLLAPSE
        Expr::Union(Box::new(nums()), Box::new(numsb())), // derived ∪
        Expr::Intersect(Box::new(nums()), Box::new(numsb())), // derived ∩
    ];
    for plan in cases {
        round_trip(&mut db, &plan, false);
    }
}

#[test]
fn tuple_operator_cases() {
    let mut db = database();
    let one = Expr::named("OneTup");
    let cases = vec![
        one.clone().project(["b"]),                      // π
        one.clone().tup_cat(Expr::int(3).make_tup("c")), // TUP_CAT
        one.clone().extract("a"),                        // TUP_EXTRACT
        Expr::int(5).make_tup("only"),                   // TUP
        Expr::named("Pairs").set_apply(Expr::input().extract("b")),
    ];
    for plan in cases {
        round_trip(&mut db, &plan, false);
    }
}

#[test]
fn array_operator_cases() {
    let mut db = database();
    let cases = vec![
        Expr::int(1).make_arr(),                       // ARR
        xs().arr_extract(2),                           // ARR_EXTRACT
        Expr::ArrExtract(Box::new(xs()), Bound::Last), // ARR_EXTRACT last
        xs().arr_apply(Expr::call(Func::Mul, vec![Expr::input(), Expr::int(2)])), // ARR_APPLY
        xs().subarr(Bound::At(2), Bound::At(3)),       // SUBARR
        xs().subarr(Bound::At(2), Bound::Last),        // SUBARR last
        xs().arr_cat(Expr::named("Ys")),               // ARR_CAT
        Expr::ArrCollapse(Box::new(Expr::named("NestedArr"))), // ARR_COLLAPSE
        Expr::ArrDiff(Box::new(xs()), Box::new(Expr::named("Ys"))), // ARR_DIFF
        Expr::ArrDupElim(Box::new(xs())),              // ARR_DE
        Expr::ArrCross(Box::new(xs()), Box::new(Expr::named("Ys"))), // ARR_CROSS
    ];
    for plan in cases {
        round_trip(&mut db, &plan, false);
    }
}

#[test]
fn reference_operator_cases() {
    let mut db = database();
    // DEREF over existing identities.
    let deref_plan = Expr::named("Employees").set_apply(Expr::input().deref().extract("name"));
    round_trip(&mut db, &deref_plan, false);
    // REF mints fresh OIDs — compare modulo identity.
    let mint = Expr::named("Departments").set_apply(Expr::input().deref().make_ref("Department"));
    round_trip(&mut db, &mint, true);
}

#[test]
fn predicate_cases() {
    let mut db = database();
    let comp = Expr::named("OneTup").comp(Pred::cmp(
        Expr::input().extract("a"),
        CmpOp::Eq,
        Expr::int(7),
    ));
    round_trip(&mut db, &comp, false);
    // Failing COMP: dne round-trips through `the` of the empty set.
    let comp_false = Expr::named("OneTup").comp(Pred::cmp(
        Expr::input().extract("a"),
        CmpOp::Gt,
        Expr::int(100),
    ));
    round_trip(&mut db, &comp_false, false);
    // σ (derived) desugars before decompilation.
    let sel = Expr::named("Nums").select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(2)));
    round_trip(&mut db, &sel, false);
    // Conjunction + negation + membership.
    let fancy = Expr::named("Pairs").select(
        Pred::cmp(Expr::input().extract("a"), CmpOp::In, numsb()).and(
            Pred::cmp(Expr::input().extract("b"), CmpOp::Ne, Expr::str("zzz"))
                .not()
                .not(),
        ),
    );
    round_trip(&mut db, &fancy, false);
}

#[test]
fn function_and_aggregate_cases() {
    let mut db = database();
    let cases = vec![
        Expr::call(Func::Min, vec![nums()]),
        Expr::call(Func::Max, vec![nums()]),
        Expr::call(Func::Count, vec![nums()]),
        Expr::call(Func::Sum, vec![nums()]),
        Expr::call(Func::Avg, vec![nums()]),
        Expr::call(Func::The, vec![Expr::int(3).make_set()]),
        Expr::call(Func::Add, vec![Expr::int(1), Expr::int(2)]),
        Expr::call(Func::Sub, vec![Expr::int(1), Expr::int(2)]),
        Expr::call(Func::Mul, vec![Expr::int(3), Expr::int(4)]),
        Expr::call(Func::Div, vec![Expr::int(9), Expr::int(2)]),
        Expr::call(Func::Neg, vec![Expr::int(5)]),
    ];
    for plan in cases {
        round_trip(&mut db, &plan, false);
    }
}

#[test]
fn dispatch_case_decompiles_to_union_form() {
    let mut db = database();
    let plan = Expr::SetApplySwitch {
        input: Box::new(Expr::named("P")),
        table: vec![
            ("Person".into(), Expr::input().extract("name")),
            ("Employee".into(), Expr::input().extract("jobtitle")),
            ("Student".into(), Expr::input().extract("advisor_name")),
        ],
    };
    round_trip(&mut db, &plan, false);
}

#[test]
fn rel_join_and_rel_cross_desugar_and_round_trip() {
    let mut db = database();
    db.put_object(
        "Pairs2",
        SchemaType::set(SchemaType::tuple([
            ("c", SchemaType::int4()),
            ("d", SchemaType::chars()),
        ])),
        Value::set([
            Value::tuple([("c", Value::int(2)), ("d", Value::str("q"))]),
            Value::tuple([("c", Value::int(9)), ("d", Value::str("r"))]),
        ]),
    );
    let join = Expr::named("Pairs").rel_join(
        Expr::named("Pairs2"),
        Pred::cmp(
            Expr::input().extract("a"),
            CmpOp::Eq,
            Expr::input().extract("c"),
        ),
    );
    round_trip(&mut db, &join, false);
    let cross = Expr::named("Pairs").rel_cross(Expr::named("Pairs2"));
    round_trip(&mut db, &cross, false);
}

#[test]
fn primed_fields_are_a_documented_decompile_limit() {
    let db = database();
    // Self-join: the clash-primed field `a'` has no surface form.
    let join = Expr::named("Pairs").rel_join(
        Expr::named("Pairs"),
        Pred::cmp(
            Expr::input().extract("a"),
            CmpOp::Eq,
            Expr::input().extract("a'"),
        ),
    );
    assert!(decompile(&join, db.registry()).is_err());
}

#[test]
fn nested_binders_round_trip() {
    let mut db = database();
    // SET_APPLY within SET_APPLY, inner body referencing the outer binder:
    // for each n in Nums, the set of sums n+m over NumsB.
    let plan = nums().set_apply(numsb().set_apply(Expr::call(
        Func::Add,
        vec![Expr::input(), Expr::input_at(1)],
    )));
    round_trip(&mut db, &plan, false);
}

#[test]
fn literal_cases() {
    let mut db = database();
    let cases = vec![
        Expr::lit(Value::set([Value::int(1), Value::int(1)])),
        Expr::lit(Value::array([Value::str("a"), Value::str("b")])),
        Expr::lit(Value::tuple([
            ("x", Value::float(2.5)),
            ("y", Value::bool(true)),
        ])),
        Expr::lit(Value::dne()),
        Expr::lit(Value::unk()),
        Expr::lit(Value::date(excess::types::Date::new(1990, 12, 1).unwrap())),
        Expr::lit(Value::Tuple(excess::types::Tuple::empty())),
    ];
    for plan in cases {
        round_trip(&mut db, &plan, false);
    }
}

#[test]
fn oid_constants_have_no_surface_form() {
    let db = database();
    let some_oid = db
        .catalog()
        .value("Employees")
        .unwrap()
        .as_set()
        .unwrap()
        .iter_occurrences()
        .next()
        .unwrap()
        .clone();
    let plan = Expr::lit(some_oid);
    assert!(decompile(&plan, db.registry()).is_err());
}

#[test]
fn counters_are_observable_through_db() {
    let mut db = database();
    let plan = nums().set_apply(Expr::input());
    db.run_plan(&plan).unwrap();
    let c: Counters = db.last_counters();
    assert_eq!(c.occurrences_scanned, 6); // |Nums| = 6 occurrences
}
