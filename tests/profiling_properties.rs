//! Randomised properties of the per-operator profiler over generated
//! multiset pipelines:
//!
//! 1. **Exact attribution** — the per-node *self* counter deltas sum to
//!    exactly the global counters of the run (the telescoping invariant),
//!    and the profile's recorded total matches the evaluator's counters;
//! 2. **Observation is free of side effects** — running with profiling
//!    enabled returns the same value and the same global counters as
//!    running without it.

use excess::algebra::expr::{CmpOp, Expr, Func, Pred};
use excess::db::Database;
use excess::types::{SchemaType, Value};
use proptest::prelude::*;

/// One pipeline stage over a multiset of ints (a compact version of the
/// generator in `property_pipelines.rs`).
#[derive(Debug, Clone)]
enum Stage {
    DupElim,
    SelectGe(i32),
    MapAdd(i32),
    MapWrapSetAndCollapse,
    DiffB,
    AddUnionB,
    CrossCountB,
    GroupModAndFlatten(i32),
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::DupElim),
        (-4i32..8).prop_map(Stage::SelectGe),
        (-3i32..4).prop_map(Stage::MapAdd),
        Just(Stage::MapWrapSetAndCollapse),
        Just(Stage::DiffB),
        Just(Stage::AddUnionB),
        Just(Stage::CrossCountB),
        (1i32..4).prop_map(Stage::GroupModAndFlatten),
    ]
}

fn build(stages: &[Stage]) -> Expr {
    let mut e = Expr::named("NumsA");
    for s in stages {
        match s {
            Stage::DupElim => e = e.dup_elim(),
            Stage::SelectGe(k) => {
                e = e.select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(*k)));
            }
            Stage::MapAdd(k) => {
                e = e.set_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(*k)]));
            }
            Stage::MapWrapSetAndCollapse => {
                e = e.set_apply(Expr::input().make_set()).set_collapse();
            }
            Stage::DiffB => e = e.diff(Expr::named("NumsB")),
            Stage::AddUnionB => e = e.add_union(Expr::named("NumsB")),
            Stage::CrossCountB => {
                // Pair with B, keep the left component: exercises ×.
                e = e
                    .cross(Expr::named("NumsB"))
                    .set_apply(Expr::input().extract("fst"));
            }
            Stage::GroupModAndFlatten(m) => {
                e = e
                    .group_by(Expr::call(
                        Func::Sub,
                        vec![
                            Expr::input(),
                            Expr::call(
                                Func::Mul,
                                vec![
                                    Expr::call(Func::Div, vec![Expr::input(), Expr::int(*m)]),
                                    Expr::int(*m),
                                ],
                            ),
                        ],
                    ))
                    .set_collapse();
            }
        }
    }
    e
}

fn database(a: &[i32], b: &[i32]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "NumsA",
        SchemaType::set(SchemaType::int4()),
        Value::set(a.iter().copied().map(Value::int)),
    );
    db.put_object(
        "NumsB",
        SchemaType::set(SchemaType::int4()),
        Value::set(b.iter().copied().map(Value::int)),
    );
    db.collect_stats();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn per_node_self_deltas_sum_to_global_counters(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec(-5i32..10, 0..10),
        b in prop::collection::vec(-5i32..10, 0..8)
    ) {
        let plan = build(&stages);
        let mut db = database(&a, &b);
        let (_, profile) = db.run_plan_profiled(&plan).unwrap();
        let global = db.last_counters();
        prop_assert_eq!(profile.total, global, "plan {}", plan);
        prop_assert_eq!(
            profile.sum_of_self_counters(), global,
            "self deltas must telescope to the global counters for {}", plan
        );
        // Inclusive counters at the root equal the whole run too.
        let root = profile.root().expect("root profiled");
        prop_assert_eq!(root.total_counters, global);
    }

    #[test]
    fn profiling_is_observation_only(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec(-5i32..10, 0..10),
        b in prop::collection::vec(-5i32..10, 0..8)
    ) {
        let plan = build(&stages);
        let mut plain_db = database(&a, &b);
        let plain = plain_db.run_plan(&plan).unwrap();
        let plain_counters = plain_db.last_counters();

        let mut traced_db = database(&a, &b);
        let (traced, profile) = traced_db.run_plan_profiled(&plan).unwrap();
        prop_assert_eq!(&plain, &traced, "profiling changed the result of {}", plan);
        prop_assert_eq!(
            plain_counters, traced_db.last_counters(),
            "profiling changed the work counters of {}", plan
        );
        // The root's output cardinality matches the actual result.
        let rows = match &traced {
            Value::Set(s) => s.len(),
            Value::Array(arr) => arr.len() as u64,
            _ => 1,
        };
        prop_assert_eq!(profile.root().expect("root profiled").rows_out, rows);
    }
}
