//! The headline acceptance test: with statistics collected from the store
//! (no hints, no pre-desugaring), greedy hill-climbing derives the paper's
//! Figure 8 plan from the Figure 6 parser output — and the rewrite journal
//! names the two DE-pushing rules as *taken*, not refused.
//!
//! Also holds the distinct-propagation property tests: for any pipeline
//! the cost model never estimates `distinct > rows`.

use excess::optimizer::{cost_of, estimate, Estimate, Optimizer, RuleCtx, Statistics};
use excess_bench::example1::{example1_db, figure6, figure7, figure8, figure8_canonical};
use excess_core::expr::{CmpOp, Expr, Pred};
use excess_db::Database;

const S: usize = 40;
const E: usize = 24;

fn fixture() -> Database {
    example1_db(S, E, S.max(E))
}

#[test]
fn greedy_reaches_figure8_from_figure6() {
    let db = fixture();
    let opt = Optimizer::standard();
    let rctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let (best, journal) = opt.optimize_greedy_journaled(&figure6(), &rctx, db.statistics());
    assert_eq!(
        best.plan,
        figure8_canonical(),
        "greedy should land exactly on the Figure 8 plan, got:\n{:?}",
        best.plan
    );
    let rules = journal.rule_sequence();
    assert!(
        rules.contains(&"rule8-de-through-group"),
        "Figure 6→7 step missing from journal: {rules:?}"
    );
    assert!(
        rules.contains(&"rel5-de-early"),
        "Figure 7→8 step missing from journal: {rules:?}"
    );
    // Taken, not refused: neither DE-pushing rule appears in the refusal
    // ledger for this derivation.
    for refusal in &journal.refused {
        assert!(
            refusal.rule != "rule8-de-through-group" && refusal.rule != "rel5-de-early",
            "DE-push rule refused: {refusal:?}"
        );
    }
    // Strictly decreasing cost trajectory, ending at the reported best.
    let traj = journal.cost_trajectory();
    assert!(traj.windows(2).all(|w| w[1] < w[0]), "{traj:?}");
    assert_eq!(journal.final_cost, best.cost);
}

#[test]
fn all_three_figures_converge_on_the_canonical_plan() {
    let db = fixture();
    let opt = Optimizer::standard();
    let rctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    for (name, plan) in [
        ("figure6", figure6()),
        ("figure7", figure7()),
        ("figure8", figure8()),
    ] {
        let best = opt.optimize_greedy(&plan, &rctx, db.statistics());
        assert_eq!(
            best.plan,
            figure8_canonical(),
            "{name} did not converge on the canonical Figure 8 plan"
        );
    }
}

#[test]
fn optimized_figure6_runs_and_agrees_with_the_original() {
    let mut db = fixture();
    let opt = Optimizer::standard();
    let rctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let best = opt.optimize_greedy(&figure6(), &rctx, db.statistics());
    let original = db.run_plan(&figure6()).unwrap();
    let optimized = db.run_plan(&best.plan).unwrap();
    assert_eq!(original, optimized);
    // And the optimized plan really does less DE work at run time.
    db.run_plan(&figure6()).unwrap();
    let de_before = db.last_counters().de_input_occurrences;
    db.run_plan(&best.plan).unwrap();
    let de_after = db.last_counters().de_input_occurrences;
    assert!(
        de_after < de_before,
        "optimized DE input {de_after} should be below {de_before}"
    );
}

#[test]
fn collected_stats_know_the_duplication() {
    let db = fixture();
    let s1 = db.statistics().object("S1");
    assert_eq!(s1.rows, S as f64);
    // dup = max(S,E) = 40 ⇒ one distinct (sdept, sadv) pair; snames unique.
    assert_eq!(s1.attr_ndv.get("sdept"), Some(&1.0));
    assert_eq!(s1.attr_ndv.get("sadv"), Some(&1.0));
    assert_eq!(s1.attr_ndv.get("sname"), Some(&(S as f64)));
    let e1 = db.statistics().object("E1");
    assert_eq!(e1.attr_ndv.get("ename"), Some(&1.0));
    assert_eq!(e1.attr_ndv.get("esal"), Some(&(E as f64)));
}

// ---------------------------------------------------------------------
// Property: distinct ≤ rows for every node of every generated pipeline.
// ---------------------------------------------------------------------

/// Deterministic pipeline generator: seeds pick a base object, a chain of
/// operators, and per-step parameters.  Small but covers every collection
/// operator the propagation pass special-cases.
fn generated_pipeline(seed: u64) -> Expr {
    let mut x = seed;
    let mut next = move |m: u64| {
        // xorshift keeps the generator dependency-free and reproducible.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % m
    };
    let fields = ["a", "b", "c"];
    let mut e = Expr::named(if next(2) == 0 { "S" } else { "E" });
    for _ in 0..next(6) + 1 {
        match next(8) {
            0 => {
                let f = fields[next(3) as usize];
                e = e.set_apply(Expr::input().project([f]));
            }
            1 => {
                let f = fields[next(3) as usize];
                e = e.set_apply(Expr::input().extract(f));
            }
            2 => e = e.dup_elim(),
            3 => {
                let f = fields[next(3) as usize];
                e = e.group_by(Expr::input().extract(f));
            }
            4 => e = e.add_union(Expr::named("E")),
            5 => {
                let f = fields[next(3) as usize];
                e = e.select(Pred::cmp(Expr::input().extract(f), CmpOp::Eq, Expr::int(1)));
            }
            6 => {
                e = e.rel_join(
                    Expr::named("E"),
                    Pred::cmp(
                        Expr::input().extract("a"),
                        CmpOp::Eq,
                        Expr::input().extract("b"),
                    ),
                );
            }
            _ => e = e.set_apply(Expr::input()),
        }
    }
    e
}

fn assert_distinct_bounded(est: &Estimate) {
    assert!(
        est.distinct <= est.rows,
        "distinct {} > rows {}",
        est.distinct,
        est.rows
    );
    if let Some(m) = &est.attr_ndv {
        for (attr, ndv) in m {
            assert!(*ndv <= est.rows, "ndv({attr}) = {ndv} > rows {}", est.rows);
        }
    }
}

#[test]
fn distinct_never_exceeds_rows_for_generated_pipelines() {
    let mut stats = Statistics::new();
    stats.set_object("S", 1000.0, 120.0, 8.0);
    stats.set_attr_ndv("S", "a", 7.0);
    stats.set_attr_ndv("S", "b", 400.0);
    stats.set_attr_ndv("S", "c", 1000.0);
    stats.set_object("E", 300.0, 300.0, 4.0);
    stats.set_attr_ndv("E", "a", 300.0);
    stats.set_attr_ndv("E", "b", 2.0);
    for seed in 1..400u64 {
        let e = generated_pipeline(seed);
        let mut env = Vec::new();
        let est = estimate(&e, &mut env, &stats);
        assert_distinct_bounded(&est);
        // Every interior node's estimate obeys the bound too.
        for (_, node_est) in excess::optimizer::estimate_nodes(&e, &stats) {
            assert_distinct_bounded(&node_est);
        }
        assert!(cost_of(&e, &stats).is_finite());
    }
}
