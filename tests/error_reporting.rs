//! Error types render actionable messages at every layer.

use excess::db::Database;

#[test]
fn type_errors_name_the_offender() {
    use excess::types::{SchemaType, TypeRegistry};
    let mut r = TypeRegistry::new();
    r.define("A", SchemaType::tuple([("x", SchemaType::int4())]))
        .unwrap();
    let dup = r.define("A", SchemaType::int4()).unwrap_err();
    assert_eq!(dup.to_string(), "type `A` defined twice");
    let unknown = r.lookup("Nope").unwrap_err();
    assert_eq!(unknown.to_string(), "unknown type `Nope`");
}

#[test]
fn eval_errors_name_operator_and_sorts() {
    let mut db = Database::new();
    db.execute("retrieve ({ 1 }) into S").unwrap();
    let err = db
        .execute("retrieve (arr_extract(S, 1))")
        .unwrap_err()
        .to_string();
    assert!(err.contains("array"), "{err}");
    let err2 = db.execute("retrieve (1 / 0)").unwrap_err().to_string();
    assert!(err2.contains("division by zero"), "{err2}");
}

#[test]
fn parse_errors_point_at_the_token() {
    let mut db = Database::new();
    let err = db.execute("retrieve (1 +)").unwrap_err().to_string();
    assert!(err.starts_with("parse error"), "{err}");
    let err2 = db.execute("define type : ()").unwrap_err().to_string();
    assert!(err2.contains("identifier"), "{err2}");
}

#[test]
fn translate_errors_explain_name_resolution() {
    let mut db = Database::new();
    let err = db
        .execute("retrieve (Ghost.field)")
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown name `Ghost`"), "{err}");
}

#[test]
fn domain_violations_show_expected_and_found() {
    let mut db = Database::new();
    db.execute("define type T: (x: int4) create Ts: { T }")
        .unwrap();
    let err = db
        .execute(r#"append to Ts (x: "nope")"#)
        .unwrap_err()
        .to_string();
    assert!(err.contains("int4"), "{err}");
}

#[test]
fn workload_scaling_multiplies_populations() {
    use excess::workload::UniversityParams;
    let p = UniversityParams::default().scaled(3);
    let d = UniversityParams::default();
    assert_eq!(p.employees, d.employees * 3);
    assert_eq!(p.students, d.students * 3);
    assert_eq!(p.departments, d.departments * 3);
}
