//! Memo/greedy differential battery: the memoized search must reproduce
//! the paper's Figure 8 derivation without greedy seeding, and on random
//! pipelines its chosen plan must evaluate canon-identically to the
//! greedy-chosen plan at no higher estimated cost — serial and under
//! `EXCESS_THREADS=4` alike (the harness env decides; CI runs both).

use excess::optimizer::{Optimizer, RuleCtx};
use excess_bench::example1::{example1_db, figure6, figure8_canonical};
use excess_core::canon::canonical_form;
use excess_core::expr::{CmpOp, Expr, Pred};
use excess_db::Database;

mod common;

#[test]
fn unseeded_memo_reaches_figure8_from_figure6() {
    let db = example1_db(40, 24, 40);
    let mut opt = Optimizer::standard();
    opt.seed_greedy = false;
    let rctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let (best, run) = opt.optimize_memo_journaled(&figure6(), &rctx, db.statistics());
    assert_eq!(
        best.plan,
        figure8_canonical(),
        "pure memo search should land exactly on the Figure 8 plan, got:\n{:?}",
        best.plan
    );
    let rules = run.journal.rule_sequence();
    assert!(
        rules.contains(&"rule8-de-through-group"),
        "Figure 6→7 step missing from memo journal: {rules:?}"
    );
    assert!(
        rules.contains(&"rel5-de-early"),
        "Figure 7→8 step missing from memo journal: {rules:?}"
    );
    // Zero soundness-gate regressions: the DE-pushing rules were taken,
    // never refused, and the extraction gate never fired.
    for refusal in &run.journal.refused {
        assert!(
            refusal.rule != "rule8-de-through-group"
                && refusal.rule != "rel5-de-early"
                && refusal.rule != excess::optimizer::MEMO_EXTRACT_RULE,
            "unexpected refusal: {refusal:?}"
        );
    }
    assert!(run.journal.final_cost < run.journal.initial_cost);
}

#[test]
fn seeded_memo_agrees_with_greedy_on_the_figures() {
    let db = example1_db(40, 24, 40);
    let opt = Optimizer::standard();
    let rctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let greedy = opt.optimize_greedy(&figure6(), &rctx, db.statistics());
    let memo = opt.optimize_memo(&figure6(), &rctx, db.statistics());
    assert!(memo.cost <= greedy.cost + 1e-9);
    assert_eq!(memo.plan, figure8_canonical());
}

/// Deterministic pipeline generator over the shared fixture's `S` and `T`
/// int-set objects plus the `Mixed` hierarchy extent — same spirit as the
/// figure8_convergence generator, but aimed at plans both engines can run.
fn generated_pipeline(seed: u64) -> Expr {
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    let mut next = move |m: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % m
    };
    let mut e = Expr::named(if next(2) == 0 { "S" } else { "T" });
    for _ in 0..next(5) + 1 {
        match next(7) {
            0 => e = e.dup_elim(),
            1 => e = e.set_apply(Expr::input()),
            2 => e = e.select(Pred::cmp(Expr::input(), CmpOp::Gt, Expr::int(1))),
            3 => e = e.add_union(Expr::named("T")),
            4 => e = e.group_by(Expr::input()),
            5 => e = e.dup_elim().dup_elim(),
            _ => {
                e = e
                    .set_apply(Expr::input().make_tup("v"))
                    .set_apply(Expr::input().extract("v"));
            }
        }
    }
    e
}

#[test]
fn memo_matches_greedy_on_random_pipelines() {
    let mut db: Database = common::database();
    db.analyze();
    let opt = Optimizer::standard();
    for seed in 1..120u64 {
        let plan = generated_pipeline(seed);
        let rctx = RuleCtx {
            registry: db.registry(),
            schemas: db.catalog(),
        };
        let greedy = opt.optimize_greedy(&plan, &rctx, db.statistics());
        let memo = opt.optimize_memo(&plan, &rctx, db.statistics());
        assert!(
            memo.cost <= greedy.cost + 1e-9,
            "seed {seed}: memo cost {} > greedy cost {} on {plan:?}",
            memo.cost,
            greedy.cost
        );
        let canon_greedy = db
            .run_plan(&greedy.plan)
            .map(|v| canonical_form(&v, db.store()))
            .expect("greedy plan evaluates");
        let canon_memo = db
            .run_plan(&memo.plan)
            .map(|v| canonical_form(&v, db.store()))
            .expect("memo plan evaluates");
        assert_eq!(
            canon_greedy, canon_memo,
            "seed {seed}: memo and greedy plans disagree on {plan:?}"
        );
    }
}
