//! The partition-parallel engine's core promise, checked end to end:
//! for every plan, `canon(parallel) == canon(serial)` — regardless of
//! worker count, partition count, data skew, or which partitioning
//! strategy (chunk, hash, broadcast, exchange) the engine picks.
//!
//! Coverage:
//! * the shared `common::seeds()` rewrite battery (every rule family,
//!   all 23 primitive operators reachable from plans) under partition
//!   counts {1, 2, 3, 7};
//! * an explicit per-operator battery for the operators the seed plans
//!   exercise only incidentally (Diff/∩/∪, the array algebra, COMP,
//!   relational joins);
//! * the Example 1 / Example 2 figure plans (F6–F11) through the
//!   `Database` API;
//! * skew (all occurrences hash to one partition) and empty partitions;
//! * a *negative* test: order-sensitive array operators must journal a
//!   serial fallback and preserve exact element order;
//! * a proptest over random multiset pipelines.

mod common;

use excess::algebra::canon::equal_modulo_identity;
use excess::algebra::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess::db::{Database, ExecConfig};
use excess::exec::{ExecEvent, Strategy as ExecStrategy};
use excess::types::{SchemaType, Value};
use excess_bench::example1::{example1_db, figure6, figure7, figure8};
use excess_bench::example2::{example2_db, figure10, figure11, figure9};
use proptest::prelude::*;

/// Run `plan` serially on one fresh database and in parallel (under
/// `cfg`) on another, and assert the results are equal modulo object
/// identity.  Separate databases keep minted OIDs from one run out of
/// the other's store.
fn assert_equivalent(make_db: impl Fn() -> Database, plan: &Expr, cfg: ExecConfig) {
    let mut serial_db = make_db();
    let serial = serial_db.run_plan(plan).unwrap();
    let mut par_db = make_db();
    par_db.set_exec_config(cfg);
    let parallel = par_db.run_plan_parallel(plan).unwrap();
    assert!(
        equal_modulo_identity(&serial, serial_db.store(), &parallel, par_db.store()),
        "plan {plan} diverged under {cfg:?}:\n  serial:   {serial}\n  parallel: {parallel}"
    );
}

#[test]
fn seed_battery_matches_serial_across_partition_counts() {
    for partitions in [1usize, 2, 3, 7] {
        let cfg = ExecConfig {
            workers: 3,
            partitions,
        };
        for plan in common::seeds() {
            assert_equivalent(common::database, &plan, cfg);
        }
    }
}

/// Operators the seed battery reaches only incidentally, each made the
/// plan's focus: multiset difference/intersection/union, the whole array
/// algebra, COMP, and the relational join forms.
fn operator_battery() -> Vec<Expr> {
    let s = || Expr::named("S");
    let t = || Expr::named("T");
    let arr = || Expr::named("Arr");
    let arrb = || Expr::named("ArrB");
    vec![
        s().diff(t()),
        Expr::Intersect(Box::new(s()), Box::new(t())),
        Expr::Union(Box::new(s()), Box::new(t())),
        Expr::ArrDiff(Box::new(arr()), Box::new(arrb())),
        Expr::ArrDupElim(Box::new(arr())),
        Expr::ArrCross(Box::new(arr()), Box::new(arrb())),
        Expr::ArrCollapse(Box::new(Expr::named("ArrNested"))),
        Expr::int(7).make_arr(),
        Expr::int(7).make_set(),
        arr().subarr(Bound::At(2), Bound::At(5)),
        Expr::ArrSelect {
            input: Box::new(arr()),
            pred: Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(2)),
        },
        Expr::named("OneTup").comp(Pred::cmp(
            Expr::input().extract("x"),
            CmpOp::Lt,
            Expr::int(9),
        )),
        s().rel_cross(t()),
        // Equi-join: hash-key exchange territory.
        s().rel_join(
            t(),
            Pred::cmp(
                Expr::input().extract("name"),
                CmpOp::Eq,
                Expr::input().extract("name"),
            ),
        ),
        // Non-equi join: broadcast territory.
        s().rel_join(
            t(),
            Pred::cmp(
                Expr::input().extract("grp"),
                CmpOp::Lt,
                Expr::input().extract("grp"),
            ),
        ),
        // GRP with a computed key.
        s().group_by(Expr::input().extract("name")),
    ]
}

#[test]
fn operator_battery_matches_serial() {
    for workers in [2usize, 4] {
        let cfg = ExecConfig::with_workers(workers);
        for plan in operator_battery() {
            assert_equivalent(common::database, &plan, cfg);
        }
    }
}

#[test]
fn figure_plans_match_serial_through_database_api() {
    let cfg = ExecConfig::with_workers(4);
    let ex1 = || example1_db(48, 32, 8);
    for plan in [figure6(), figure7(), figure8()] {
        assert_equivalent(ex1, &plan, cfg);
    }
    let ex2 = || example2_db(120, 8, 4);
    for plan in [figure9(), figure10(), figure11()] {
        assert_equivalent(ex2, &plan, cfg);
    }
    // And the engine actually parallelised something on the figure pair.
    let mut db = ex1();
    db.set_exec_config(cfg);
    let (_, report) = db.run_plan_parallel_report(&figure8()).unwrap();
    assert!(
        report.parallel_nodes() > 0,
        "figure 8 should parallelise, events: {:?}",
        report.events
    );
    assert_eq!(report.worker_stats.len(), 4);
}

#[test]
fn skewed_data_still_matches_and_reports_empty_partitions() {
    // Every tuple has the same `name`, so the GRP exchange hashes all
    // occurrences into one key partition: maximal skew.
    let make_db =
        || {
            let mut db = Database::new();
            db.optimize = false;
            db.put_object(
                "Skewed",
                SchemaType::set(SchemaType::tuple([
                    ("name", SchemaType::chars()),
                    ("v", SchemaType::int4()),
                ])),
                Value::set((0..40).map(|i| {
                    Value::tuple([("name", Value::str("same")), ("v", Value::int(i % 5))])
                })),
            );
            db
        };
    let plan = Expr::named("Skewed").group_by(Expr::input().extract("name"));
    let cfg = ExecConfig::with_workers(4);
    assert_equivalent(make_db, &plan, cfg);

    let mut db = make_db();
    db.set_exec_config(cfg);
    let (_, report) = db.run_plan_parallel_report(&plan).unwrap();
    let exchange_empty = report
        .events
        .iter()
        .any(|e| matches!(e, ExecEvent::Exchange { empty, .. } if *empty == 3));
    assert!(
        exchange_empty,
        "one key means 3 of 4 exchange partitions are empty: {:?}",
        report.events
    );
    assert!(
        report.skew().unwrap() > 1.0 + 1e-9,
        "all occurrences on one worker is maximal skew"
    );
}

#[test]
fn order_sensitive_array_operators_fall_back_serially_and_keep_order() {
    // ARR_APPLY's output order is its input order; a chunked parallel
    // run that merged out of order would be *wrong*, not just different.
    // The engine must journal a serial fallback and return the exact
    // serial array (element-for-element, not just canon-equal).
    let plan = Expr::named("Arr")
        .arr_apply(Expr::call(Func::Mul, vec![Expr::input(), Expr::int(10)]))
        .arr_cat(Expr::named("ArrB"));
    let mut serial_db = common::database();
    let serial = serial_db.run_plan(&plan).unwrap();

    let mut db = common::database();
    db.set_exec_config(ExecConfig::with_workers(4));
    let (parallel, report) = db.run_plan_parallel_report(&plan).unwrap();
    assert_eq!(
        serial, parallel,
        "array results must be exactly equal, order included"
    );
    let order_fallback = report.events.iter().any(|e| {
        matches!(e, ExecEvent::SerialFallback { reason, .. } if reason.contains("order-sensitive"))
    });
    assert!(
        order_fallback,
        "ARR_APPLY must journal an order-sensitivity fallback: {:?}",
        report.events
    );
    assert!(
        !report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Parallel { op, .. } if op.starts_with("ARR"))),
        "no array operator may run partitioned: {:?}",
        report.events
    );
}

#[test]
fn equi_join_exchange_fires_and_matches() {
    // Diverse keys → the hash-key exchange splits both sides.
    let make_db = || {
        let mut db = Database::new();
        db.optimize = false;
        db.put_object(
            "L",
            SchemaType::set(SchemaType::tuple([
                ("k", SchemaType::int4()),
                ("a", SchemaType::int4()),
            ])),
            Value::set(
                (0..30).map(|i| Value::tuple([("k", Value::int(i % 10)), ("a", Value::int(i))])),
            ),
        );
        db.put_object(
            "R",
            SchemaType::set(SchemaType::tuple([
                ("j", SchemaType::int4()),
                ("b", SchemaType::int4()),
            ])),
            Value::set(
                (0..20).map(|i| Value::tuple([("j", Value::int(i % 10)), ("b", Value::int(i))])),
            ),
        );
        db
    };
    let plan = Expr::named("L").rel_join(
        Expr::named("R"),
        Pred::cmp(
            Expr::input().extract("k"),
            CmpOp::Eq,
            Expr::input().extract("j"),
        ),
    );
    let cfg = ExecConfig::with_workers(4);
    assert_equivalent(make_db, &plan, cfg);

    let mut serial_db = make_db();
    serial_db.run_plan(&plan).unwrap();
    let serial_cmps = serial_db.last_counters().comparisons;

    let mut db = make_db();
    db.set_exec_config(cfg);
    let (_, report) = db.run_plan_parallel_report(&plan).unwrap();
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e, ExecEvent::Exchange { .. })),
        "diverse equi-join keys should trigger the exchange: {:?}",
        report.events
    );
    // The exchange only ever *prunes* comparisons: pairs in different
    // key partitions were definite serial mismatches.
    assert!(
        db.last_counters().comparisons <= serial_cmps,
        "exchange did more comparisons ({}) than serial ({serial_cmps})",
        db.last_counters().comparisons
    );
}

#[test]
fn chunk_and_hash_strategies_preserve_exact_counters() {
    // For chunk- and hash-partitioned single-input operators the engine
    // promises counter-exactness, not just value equality.
    let plans = [
        Expr::named("S").select(common::grp_pred()),
        Expr::named("S").set_apply(Expr::input().extract("name")),
        Expr::named("S").dup_elim(),
        Expr::named("S").add_union(Expr::named("T")),
    ];
    for plan in plans {
        let mut serial_db = common::database();
        serial_db.run_plan(&plan).unwrap();
        let serial_counters = serial_db.last_counters();

        let mut db = common::database();
        db.set_exec_config(ExecConfig::with_workers(3));
        let (_, report) = db.run_plan_parallel_report(&plan).unwrap();
        assert_eq!(
            db.last_counters(),
            serial_counters,
            "counters diverged for {plan}"
        );
        assert!(report.parallel_nodes() > 0, "{plan} should parallelise");
        assert!(report.events.iter().all(|e| !matches!(
            e,
            ExecEvent::Parallel {
                strategy: ExecStrategy::BroadcastRight,
                ..
            }
        )));
    }
}

// ----- randomised pipelines -----

/// One stage of a random multiset pipeline (a trimmed-down version of
/// `property_pipelines`' generator: the multiset operators the engine
/// partitions).
#[derive(Debug, Clone)]
enum Stage {
    DupElim,
    SelectGe(i32),
    MapAdd(i32),
    DiffB,
    AddUnionB,
    IntersectB,
    UnionB,
    GroupModAndFlatten(i32),
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::DupElim),
        (-4i32..8).prop_map(Stage::SelectGe),
        (-3i32..4).prop_map(Stage::MapAdd),
        Just(Stage::DiffB),
        Just(Stage::AddUnionB),
        Just(Stage::IntersectB),
        Just(Stage::UnionB),
        (1i32..4).prop_map(Stage::GroupModAndFlatten),
    ]
}

fn build(stages: &[Stage]) -> Expr {
    let mut e = Expr::named("NumsA");
    for s in stages {
        match s {
            Stage::DupElim => e = e.dup_elim(),
            Stage::SelectGe(k) => {
                e = e.select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(*k)));
            }
            Stage::MapAdd(k) => {
                e = e.set_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(*k)]));
            }
            Stage::DiffB => e = e.diff(Expr::named("NumsB")),
            Stage::AddUnionB => e = e.add_union(Expr::named("NumsB")),
            Stage::IntersectB => {
                e = Expr::Intersect(Box::new(e), Box::new(Expr::named("NumsB")));
            }
            Stage::UnionB => e = Expr::Union(Box::new(e), Box::new(Expr::named("NumsB"))),
            Stage::GroupModAndFlatten(m) => {
                e = e
                    .group_by(Expr::call(
                        Func::Sub,
                        vec![
                            Expr::input(),
                            Expr::call(
                                Func::Mul,
                                vec![
                                    Expr::call(Func::Div, vec![Expr::input(), Expr::int(*m)]),
                                    Expr::int(*m),
                                ],
                            ),
                        ],
                    ))
                    .set_collapse();
            }
        }
    }
    e
}

fn num_db(a: &[i32], b: &[i32]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "NumsA",
        SchemaType::set(SchemaType::int4()),
        Value::set(a.iter().copied().map(Value::int)),
    );
    db.put_object(
        "NumsB",
        SchemaType::set(SchemaType::int4()),
        Value::set(b.iter().copied().map(Value::int)),
    );
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_pipelines_match_serial(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec(-5i32..10, 0..12),
        b in prop::collection::vec(-5i32..10, 0..8),
        workers in 2usize..5
    ) {
        let plan = build(&stages);
        let mut db = num_db(&a, &b);
        let serial = db.run_plan(&plan).unwrap();
        db.set_exec_config(ExecConfig::with_workers(workers));
        let parallel = db.run_plan_parallel(&plan).unwrap();
        prop_assert_eq!(
            &serial, &parallel,
            "pipeline {} diverged with {} workers", plan, workers
        );
        prop_assert_eq!(db.last_counters(), {
            let mut check = num_db(&a, &b);
            check.run_plan(&plan).unwrap();
            check.last_counters()
        }, "counters diverged for {}", plan);
    }
}
