//! Soundness battery for the plan property analysis.
//!
//! The analysis derives *claims* (collection kind, cardinality bounds,
//! duplicate-freeness, per-attribute presence/nullability, candidate
//! keys, functional dependencies) for every node of a plan.  This suite
//! generates random well-sorted pipelines over tuple extents seeded with
//! `dne`/`unk` values, evaluates every *closed* subexpression for real,
//! and asserts each derived claim against the actual value — serially
//! and through the partition-parallel engine (the `EXCESS_THREADS=4`
//! configuration).  It also re-checks the property-licensed rewrite
//! pass: the rewritten plan must be canon-identical to the original.

#![recursion_limit = "512"]

use excess::algebra::analysis::{analyze, Analysis, CollKind, Fact, Props};
use excess::algebra::canon::equal_modulo_identity;
use excess::algebra::expr::{Bound, CmpOp, Expr, Pred};
use excess::db::{Database, ExecConfig};
use excess::optimizer::{apply_property_rewrites, RuleCtx};
use excess::types::{Null, SchemaType, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ------------------------------------------------------------ claim checker

/// Every way `props` overclaims about the actual value `v`, rendered for
/// the failure message.  Empty means the claims are sound for this value.
fn claim_violations(v: &Value, p: &Props) -> Vec<String> {
    let mut out = Vec::new();
    match (p.coll, v) {
        (Some(CollKind::Set), Value::Set(_)) => {}
        (Some(CollKind::Array), Value::Array(_)) => {}
        (None, _) => {}
        (Some(k), other) => out.push(format!(
            "claimed coll={k:?} but the value is a {}",
            other.kind_name()
        )),
    }
    // Everything below is conditional on the value being a collection.
    let occurrences: Vec<(&Value, u64)> = match v {
        Value::Set(s) => s.iter_counted().collect(),
        Value::Array(a) => a.iter().map(|e| (e, 1)).collect(),
        _ => return out,
    };
    let card: u64 = occurrences.iter().map(|(_, c)| *c).sum();
    if card < p.card_lo {
        out.push(format!("claimed card ≥ {} but |v| = {card}", p.card_lo));
    }
    if let Some(hi) = p.card_hi {
        if card > hi {
            out.push(format!("claimed card ≤ {hi} but |v| = {card}"));
        }
    }
    if p.dup_free {
        let dup = match v {
            Value::Set(s) => s.iter_counted().any(|(_, c)| c > 1),
            Value::Array(a) => {
                let distinct: BTreeSet<&Value> = a.iter().collect();
                distinct.len() != a.len()
            }
            _ => false,
        };
        if dup {
            out.push("claimed dup_free but the value holds duplicates".into());
        }
    }
    if p.tuple_only {
        if let Some((e, _)) = occurrences
            .iter()
            .find(|(e, _)| !matches!(e, Value::Tuple(_)))
        {
            out.push(format!(
                "claimed tuple_only but found a {} element",
                e.kind_name()
            ));
        }
    }
    let tuples: Vec<&excess::types::Tuple> = occurrences
        .iter()
        .filter_map(|(e, _)| e.as_tuple())
        .collect();
    for (name, ap) in &p.attrs {
        for t in &tuples {
            match t.get(name) {
                None => {
                    if ap.present == Fact::Always {
                        out.push(format!("claimed {name} always present; a tuple lacks it"));
                    }
                }
                Some(fv) => {
                    if ap.present == Fact::Never {
                        out.push(format!("claimed {name} never present; a tuple has it"));
                    }
                    let is_dne = matches!(fv, Value::Null(Null::Dne));
                    let is_unk = matches!(fv, Value::Null(Null::Unk));
                    match (ap.dne, is_dne) {
                        (Fact::Always, false) => {
                            out.push(format!("claimed {name} always dne; found {fv}"))
                        }
                        (Fact::Never, true) => {
                            out.push(format!("claimed {name} never dne; found dne"))
                        }
                        _ => {}
                    }
                    match (ap.unk, is_unk) {
                        (Fact::Always, false) => {
                            out.push(format!("claimed {name} always unk; found {fv}"))
                        }
                        (Fact::Never, true) => {
                            out.push(format!("claimed {name} never unk; found unk"))
                        }
                        _ => {}
                    }
                    if let Some(k) = ap.kind {
                        if !is_dne && !is_unk && fv.kind_name() != k {
                            out.push(format!(
                                "claimed {name}: {k} but found a {}",
                                fv.kind_name()
                            ));
                        }
                    }
                }
            }
        }
    }
    if p.attrs_exhaustive {
        for t in &tuples {
            for f in t.field_names() {
                if !p.attrs.contains_key(f) {
                    out.push(format!("claimed attrs exhaustive; tuple has extra {f}"));
                }
            }
        }
    }
    // A key claim: no two occurrences (counting multiplicity) agree on
    // every key attribute.
    for key in &p.keys {
        let mut seen: BTreeSet<Vec<Option<String>>> = BTreeSet::new();
        for (e, c) in &occurrences {
            let Some(t) = e.as_tuple() else { continue };
            let proj: Vec<Option<String>> = key
                .iter()
                .map(|k| t.get(k).map(|fv| fv.to_string()))
                .collect();
            if *c > 1 || !seen.insert(proj) {
                out.push(format!("claimed key {key:?} but projections collide"));
                break;
            }
        }
    }
    // An FD claim lhs→rhs: occurrences agreeing on lhs agree on rhs.
    for (lhs, rhs) in &p.fds {
        let mut map: std::collections::BTreeMap<Vec<Option<String>>, Option<String>> =
            Default::default();
        for (e, _) in &occurrences {
            let Some(t) = e.as_tuple() else { continue };
            let l: Vec<Option<String>> = lhs
                .iter()
                .map(|k| t.get(k).map(|fv| fv.to_string()))
                .collect();
            let r = t.get(rhs).map(|fv| fv.to_string());
            match map.get(&l) {
                None => {
                    map.insert(l, r);
                }
                Some(prev) if *prev != r => {
                    out.push(format!("claimed FD {lhs:?}→{rhs} violated"));
                    break;
                }
                Some(_) => {}
            }
        }
    }
    out
}

/// The subexpression at `path` (children indexed in `Expr::children()`
/// order, exactly as the analysis journal records them).
fn subexpr_at<'a>(e: &'a Expr, path: &[usize]) -> Option<&'a Expr> {
    path.iter()
        .try_fold(e, |cur, &i| cur.children().get(i).copied())
}

/// True when the subexpression mentions no free `Input` at any depth —
/// i.e. it can be evaluated standalone against the catalog.
fn closed(e: &Expr) -> bool {
    (0..16).all(|d| !e.mentions_input(d))
}

/// Evaluate every closed analysed node of `plan` and return all claim
/// violations, labelled with the node path.
fn violations_for(db: &mut Database, plan: &Expr, a: &Analysis) -> Vec<String> {
    let mut out = Vec::new();
    for (path, props) in &a.props {
        let Some(sub) = subexpr_at(plan, path) else {
            continue;
        };
        if !closed(sub) {
            continue;
        }
        let sub = sub.clone();
        let Ok(value) = db.run_plan(&sub) else {
            continue; // ill-sorted fragment: nothing to claim against
        };
        for v in claim_violations(&value, props) {
            out.push(format!("at {path:?} ({sub}): {v}"));
        }
    }
    out
}

// ---------------------------------------------------------------- generator

/// One field value for a generated extent tuple: a plain int, `unk`, or
/// `dne` — so the nullability lattice is exercised end to end.
#[derive(Debug, Clone, Copy)]
enum Score {
    Int(i32),
    Unk,
    Dne,
}

impl Score {
    fn value(self) -> Value {
        match self {
            Score::Int(i) => Value::int(i),
            Score::Unk => Value::Null(Null::Unk),
            Score::Dne => Value::Null(Null::Dne),
        }
    }
}

fn arb_score() -> impl Strategy<Value = Score> {
    prop_oneof![
        (0i32..6).prop_map(Score::Int),
        Just(Score::Unk),
        Just(Score::Dne),
    ]
}

/// One pipeline stage over a set of `(id, dept, score)` tuples.  Stages
/// that do not fit the current sort are skipped during `build`, exactly
/// like the `property_pipelines` battery.
#[derive(Debug, Clone)]
enum Stage {
    DupElim,
    SelectDeptGe(i32),
    SelectScoreEq(i32),
    SelectUnsat,
    ProjectIdDept,
    ProjectDept,
    GroupByDeptCollapse,
    ExtractDept,
    AddUnionB,
    DiffB,
    IntersectB,
    UnionB,
    JoinB,
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::DupElim),
        (0i32..4).prop_map(Stage::SelectDeptGe),
        (0i32..6).prop_map(Stage::SelectScoreEq),
        Just(Stage::SelectUnsat),
        Just(Stage::ProjectIdDept),
        Just(Stage::ProjectDept),
        Just(Stage::GroupByDeptCollapse),
        Just(Stage::ExtractDept),
        Just(Stage::AddUnionB),
        Just(Stage::DiffB),
        Just(Stage::IntersectB),
        Just(Stage::UnionB),
        Just(Stage::JoinB),
    ]
}

fn dept_of(e: Expr) -> Expr {
    e.extract("dept")
}

/// Compose stages into a well-sorted plan over `PA`/`PB`.
fn build(stages: &[Stage]) -> Expr {
    let mut e = Expr::named("PA");
    let mut tuples = true; // current sort: set of tuples vs set of scalars
    let mut joined = false; // one join max, to keep field names stable
    for s in stages {
        match s {
            Stage::DupElim => e = e.dup_elim(),
            Stage::SelectDeptGe(k) if tuples => {
                e = e.select(Pred::cmp(dept_of(Expr::input()), CmpOp::Ge, Expr::int(*k)));
            }
            Stage::SelectScoreEq(k) if tuples && !joined => {
                // `score` carries dne/unk: three-valued selection.
                e = e.select(Pred::eq(Expr::input().extract("score"), Expr::int(*k)));
            }
            Stage::SelectUnsat if tuples => {
                e = e.select(
                    Pred::eq(Expr::input().extract("id"), Expr::int(1))
                        .and(Pred::eq(Expr::input().extract("id"), Expr::int(2))),
                );
            }
            Stage::ProjectIdDept if tuples && !joined => {
                e = e.set_apply(Expr::input().project(["id", "dept"]));
            }
            Stage::ProjectDept if tuples && !joined => {
                e = e.set_apply(Expr::input().project(["dept"]));
            }
            Stage::GroupByDeptCollapse if tuples => {
                e = e.group_by(dept_of(Expr::input())).set_collapse();
            }
            Stage::ExtractDept if tuples => {
                e = e.set_apply(dept_of(Expr::input()));
                tuples = false;
            }
            Stage::AddUnionB if tuples && !joined => e = e.add_union(Expr::named("PB")),
            Stage::DiffB if tuples && !joined => e = e.diff(Expr::named("PB")),
            Stage::IntersectB if tuples && !joined => {
                e = Expr::Intersect(Box::new(e), Box::new(Expr::named("PB")));
            }
            Stage::UnionB if tuples && !joined => {
                e = Expr::Union(Box::new(e), Box::new(Expr::named("PB")));
            }
            Stage::JoinB if tuples && !joined => {
                // Tuple::cat primes the clashing right-side fields.
                e = e.rel_join(
                    Expr::named("PB"),
                    Pred::eq(dept_of(Expr::input()), Expr::input().extract("dept'")),
                );
                joined = true;
            }
            _ => {} // stage invalid in the current sort: skip
        }
    }
    e
}

fn person(id: i32, dept: i32, score: Score) -> Value {
    Value::tuple([
        ("id".to_string(), Value::int(id)),
        ("dept".to_string(), Value::int(dept)),
        ("score".to_string(), score.value()),
    ])
}

fn person_schema() -> SchemaType {
    SchemaType::set(SchemaType::tuple([
        ("id", SchemaType::int4()),
        ("dept", SchemaType::int4()),
        ("score", SchemaType::int4()),
    ]))
}

/// Two tuple extents; `id` is distinct within each, `dept` repeats,
/// `score` mixes ints with `unk`/`dne`.
fn database(a: &[(i32, Score)], b: &[(i32, Score)]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.set_threads(1);
    db.put_object(
        "PA",
        person_schema(),
        Value::set(
            a.iter()
                .enumerate()
                .map(|(i, (d, s))| person(i as i32, *d, *s)),
        ),
    );
    db.put_object(
        "PB",
        person_schema(),
        Value::set(
            b.iter()
                .enumerate()
                .map(|(i, (d, s))| person(100 + i as i32, *d, *s)),
        ),
    );
    db.collect_stats();
    db
}

// -------------------------------------------------------------- the battery

/// Serial: every claim at every closed node holds on the evaluated value.
fn check_serial(stages: &[Stage], a: &[(i32, Score)], b: &[(i32, Score)]) {
    let plan = build(stages);
    let mut db = database(a, b);
    let analysis = analyze(&plan, db.catalog());
    let violations = violations_for(&mut db, &plan, &analysis);
    assert!(
        violations.is_empty(),
        "analysis overclaimed on {plan}:\n{}",
        violations.join("\n")
    );
}

/// Parallel engine (the `EXCESS_THREADS=4` configuration): the whole
/// plan's claims hold on the parallel result too, which is canon-
/// identical to the serial one.
fn check_parallel(stages: &[Stage], a: &[(i32, Score)], b: &[(i32, Score)]) {
    let plan = build(stages);
    let mut serial_db = database(a, b);
    // A ⋈ downstream of a may-be-unk σ can reject `unk` occurrences at
    // runtime; such plans error identically everywhere — nothing to claim.
    let Ok(serial) = serial_db.run_plan(&plan) else {
        return;
    };
    let mut par_db = database(a, b);
    par_db.set_exec_config(ExecConfig {
        workers: 4,
        partitions: 4,
    });
    let parallel = par_db.run_plan_parallel(&plan).unwrap();
    assert!(
        equal_modulo_identity(&serial, serial_db.store(), &parallel, par_db.store()),
        "parallel diverged on {plan}"
    );
    let analysis = analyze(&plan, par_db.catalog());
    if let Some(root) = analysis.props_at(&[]) {
        let violations = claim_violations(&parallel, root);
        assert!(
            violations.is_empty(),
            "analysis overclaimed on parallel result of {plan}:\n{}",
            violations.join("\n")
        );
    }
}

/// The property-licensed rewrite pass never changes results: the
/// rewritten plan is canon-identical, and its own claims are sound.
fn check_rewrites(stages: &[Stage], a: &[(i32, Score)], b: &[(i32, Score)]) {
    let plan = build(stages);
    let mut db = database(a, b);
    let Ok(base) = db.run_plan(&plan) else {
        return; // runtime sort error — errors are outside the claims
    };
    let rewritten = {
        let ctx = RuleCtx {
            registry: db.registry(),
            schemas: db.catalog(),
        };
        apply_property_rewrites(&plan, db.catalog(), db.statistics(), &ctx)
    };
    let out = db.run_plan(&rewritten).unwrap();
    assert!(
        equal_modulo_identity(&base, db.store(), &out, db.store()),
        "property rewrite broke {plan} into {rewritten}"
    );
    let analysis = analyze(&rewritten, db.catalog());
    let violations = violations_for(&mut db, &rewritten, &analysis);
    assert!(
        violations.is_empty(),
        "analysis overclaimed on rewritten {rewritten}:\n{}",
        violations.join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn derived_claims_hold_on_actual_results(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec((0i32..3, arb_score()), 0..8),
        b in prop::collection::vec((0i32..3, arb_score()), 0..6)
    ) {
        check_serial(&stages, &a, &b);
    }

    #[test]
    fn derived_claims_hold_under_parallel_execution(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec((0i32..3, arb_score()), 1..8),
        b in prop::collection::vec((0i32..3, arb_score()), 1..6)
    ) {
        check_parallel(&stages, &a, &b);
    }

    #[test]
    fn property_rewrites_preserve_canonical_results(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec((0i32..3, arb_score()), 0..8),
        b in prop::collection::vec((0i32..3, arb_score()), 0..6)
    ) {
        check_rewrites(&stages, &a, &b);
    }
}

// ------------------------------------------------------------- array corner

/// Deterministic array-algebra sweep: the same claim checker over every
/// prefix of an array pipeline exercising ARR_DE, ARR_SELECT, SUBARR,
/// and ARR_CAT (rejected ARR_SELECT elements leave nulls behind, so only
/// the length bound survives — the checker confirms nothing stronger is
/// claimed).
#[test]
fn array_pipeline_claims_hold() {
    let base = Expr::lit(Value::array([
        Value::int(3),
        Value::int(1),
        Value::int(3),
        Value::Null(Null::Unk),
        Value::int(7),
    ]));
    let steps: Vec<Expr> = vec![
        base.clone(),
        Expr::ArrDupElim(Box::new(base.clone())),
        base.clone().subarr(Bound::At(1), Bound::At(3)),
        Expr::ArrSelect {
            input: Box::new(base.clone()),
            pred: Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(2)),
        },
        base.clone()
            .arr_cat(Expr::lit(Value::array([Value::int(9)]))),
        Expr::ArrDupElim(Box::new(
            base.clone()
                .arr_cat(base.clone())
                .subarr(Bound::At(0), Bound::At(6)),
        )),
    ];
    let mut db = database(&[], &[]);
    for plan in steps {
        let analysis = analyze(&plan, db.catalog());
        let violations = violations_for(&mut db, &plan, &analysis);
        assert!(
            violations.is_empty(),
            "analysis overclaimed on {plan}:\n{}",
            violations.join("\n")
        );
    }
}
