//! End-to-end integration tests: every query the paper shows, executed
//! against the Figure 1 university database, both unoptimized and
//! optimized, with results compared for equality.

use excess::types::Value;
use excess::workload::{generate, queries, UniversityParams};

fn university() -> excess::db::Database {
    generate(&UniversityParams::tiny()).expect("generate").db
}

/// Run one query with and without the optimizer and check both agree.
fn run_both_ways(db: &mut excess::db::Database, src: &str) -> Value {
    db.optimize = false;
    let plain = db.execute(src).expect("unoptimized run");
    db.optimize = true;
    let optimized = db.execute(src).expect("optimized run");
    assert_eq!(plain, optimized, "optimizer changed the answer for:\n{src}");
    plain
}

#[test]
fn section2_kids_of_second_floor_employees() {
    let mut db = university();
    let out = run_both_ways(&mut db, queries::SECTION2_KIDS);
    let set = out.as_set().expect("multiset result");
    // Every result is a kid name; kids are named Kid<i>_<k>.
    for (v, _) in set.iter_counted() {
        assert!(v.as_str().expect("string").starts_with("Kid"), "{v}");
    }
    // Cross-check cardinality by hand: kids of employees whose dept is on
    // floor 2.
    let expected = hand_count_kids_on_floor(&db, 2);
    assert_eq!(set.len(), expected);
    assert!(!set.is_empty(), "workload should produce at least one kid");
}

fn hand_count_kids_on_floor(db: &excess::db::Database, floor: i32) -> u64 {
    let emps = db
        .catalog()
        .value("Employees")
        .unwrap()
        .as_set()
        .unwrap()
        .clone();
    let mut n = 0;
    for (e, _) in emps.iter_counted() {
        let emp = db.store().deref(e.as_ref_oid().unwrap()).unwrap().clone();
        let t = emp.as_tuple().unwrap();
        let dept_ref = t.get("dept").unwrap().as_ref_oid().unwrap();
        let dept = db.store().deref(dept_ref).unwrap().clone();
        let f = dept
            .as_tuple()
            .unwrap()
            .get("floor")
            .unwrap()
            .as_int()
            .unwrap();
        if f == floor {
            n += t.get("kids").unwrap().as_set().unwrap().len();
        }
    }
    n
}

#[test]
fn section2_correlated_min_age_aggregate() {
    let mut db = university();
    let out = run_both_ways(&mut db, queries::SECTION2_MIN_AGE);
    let set = out.as_set().expect("multiset result");
    // One row per employee.
    let n_emp = db
        .catalog()
        .value("Employees")
        .unwrap()
        .as_set()
        .unwrap()
        .len();
    assert_eq!(set.len(), n_emp);
    for (v, _) in set.iter_counted() {
        let t = v.as_tuple().expect("tuple row");
        assert!(t.get("name").is_some());
        let age = t.get("min").expect("aggregate field");
        // Ages are positive ints (kids born 1940-1985, today = 1990-12-01).
        let a = age.as_int().expect("int age");
        assert!((0..=60).contains(&a), "age {a}");
    }
}

#[test]
fn figure3_topten_fifth_element() {
    let mut db = university();
    let out = run_both_ways(&mut db, queries::FIGURE3);
    let t = out.as_tuple().expect("tuple result");
    assert_eq!(t.get("name").unwrap().as_str().unwrap(), "Emp4"); // 5th, 1-based
    assert!(t.get("salary").unwrap().as_int().unwrap() >= 30_000);
}

#[test]
fn figure4_functional_join() {
    let mut db = university();
    let out = run_both_ways(&mut db, queries::FIGURE4);
    let set = out.as_set().expect("multiset result");
    // Hand-check: dept names of employees living in Madison.
    let emps = db
        .catalog()
        .value("Employees")
        .unwrap()
        .as_set()
        .unwrap()
        .clone();
    let mut expected = excess::types::MultiSet::new();
    for (e, _) in emps.iter_counted() {
        let emp = db.store().deref(e.as_ref_oid().unwrap()).unwrap().clone();
        let t = emp.as_tuple().unwrap();
        if t.get("city").unwrap().as_str().unwrap() == "Madison" {
            let d = db
                .store()
                .deref(t.get("dept").unwrap().as_ref_oid().unwrap())
                .unwrap();
            expected.insert(d.as_tuple().unwrap().get("name").unwrap().clone());
        }
    }
    assert_eq!(*set, expected);
    assert!(!set.is_empty());
}

#[test]
fn example1_grouped_advisors() {
    let mut db = university();
    let out = run_both_ways(&mut db, queries::EXAMPLE1);
    let groups = out.as_set().expect("set of groups");
    assert!(!groups.is_empty());
    for (g, _) in groups.iter_counted() {
        let inner = g.as_set().expect("each group is a multiset");
        // unique: within a group every (dept name, advisor name) pair is
        // distinct.
        assert_eq!(inner.len(), inner.distinct_len() as u64);
        for (row, _) in inner.iter_counted() {
            let t = row.as_tuple().expect("tuple row");
            assert!(t.get("name").is_some());
            assert!(t.get("name'").is_some() || t.field_names().count() == 2);
        }
    }
}

#[test]
fn example2_students_by_division() {
    let mut db = university();
    let out = run_both_ways(&mut db, queries::EXAMPLE2);
    let groups = out.as_set().expect("set of groups");
    // Every member is a student name from a 5th-floor department... in the
    // tiny config floors = 3, so the result must be empty.
    assert_eq!(groups.len(), 0);

    // With enough floors there are matches.
    let mut p = UniversityParams::tiny();
    p.floors = 5;
    p.departments = 10;
    let mut db2 = generate(&p).unwrap().db;
    let out2 = run_both_ways(&mut db2, queries::EXAMPLE2);
    let groups2 = out2.as_set().unwrap();
    assert!(!groups2.is_empty(), "some dept should sit on floor 5");
    for (g, _) in groups2.iter_counted() {
        for (name, _) in g.as_set().unwrap().iter_counted() {
            assert!(name.as_str().unwrap().starts_with("Stu"));
        }
    }
}

#[test]
fn section4_get_ssnum_method_inlines() {
    let mut db = university();
    db.execute(excess::workload::queries::DEFINE_GET_SSNUM)
        .unwrap();
    // Ask for each employee's kid ssnums by the kid's name.
    let out = run_both_ways(
        &mut db,
        r#"retrieve (E.get_ssnum("Kid0_0")) from E in Employees"#,
    );
    let set = out.as_set().expect("multiset");
    // Exactly one employee (Emp0) has a kid named Kid0_0; its ssnum set has
    // one element.  Other employees contribute empty sets.
    let nonempty: Vec<_> = set
        .iter_counted()
        .filter(|(v, _)| v.as_set().map(|s| !s.is_empty()).unwrap_or(false))
        .collect();
    assert_eq!(nonempty.len(), 1);
}

#[test]
fn section4_overridden_boss_dispatch() {
    let mut db = university();
    db.execute(excess::workload::queries::DEFINE_BOSS).unwrap();
    let out = run_both_ways(&mut db, excess::workload::queries::QUERY_BOSS);
    let set = out.as_set().expect("multiset");
    let p = db.catalog().value("P").unwrap().as_set().unwrap().clone();
    // Plain persons map to their own name; Emp0 has a dne manager (maps to
    // dne, which the multiset discards) — so the result can be smaller
    // than P, but never larger.
    assert!(set.len() <= p.len());
    assert!(!set.is_empty());
    // Plain persons are their own boss: their names must appear.
    assert!(set.contains(&Value::str("Plain0")));
}

#[test]
fn section4_expensive_method_runs() {
    let mut db = university();
    db.execute(excess::workload::queries::DEFINE_WORKLOAD)
        .unwrap();
    let out = run_both_ways(&mut db, excess::workload::queries::QUERY_WORKLOAD);
    let set = out.as_set().expect("multiset");
    assert!(!set.is_empty());
    for (v, _) in set.iter_counted() {
        assert!(v.as_int().expect("int result") >= 0);
    }
}

#[test]
fn figure1_ddl_parses_and_loads() {
    // The verbatim Figure 1 DDL (with forward reference) must at least
    // parse; execution requires the reordered form the generator uses.
    let stmts = excess::lang::parse_program(excess::workload::FIGURE1_DDL).unwrap();
    assert_eq!(stmts.len(), 9);
}
