//! Stored procedures: parameterised EXCESS scripts executed with `call`.

use excess::db::Database;
use excess::types::Value;

fn payroll() -> Database {
    let mut db = Database::new();
    db.execute(
        r#"define type Emp: (ename: char[], salary: int4)
           create Emps: { ref Emp }
           append to Emps (ename: "Ann", salary: 50000)
           append to Emps (ename: "Bob", salary: 40000)
           append to Emps (ename: "Cat", salary: 60000)"#,
    )
    .unwrap();
    db
}

#[test]
fn define_and_call_an_update_procedure() {
    let mut db = payroll();
    db.execute(
        r#"define procedure give_raise (who: char[], amt: int4)
           {
             replace Emps (salary: Emps.salary + amt) where Emps.ename = who
           }"#,
    )
    .unwrap();
    db.execute(r#"call give_raise("Bob", 5000)"#).unwrap();
    let out = db
        .execute(r#"retrieve (the((retrieve (e.salary) from e in Emps where e.ename = "Bob")))"#)
        .unwrap();
    assert_eq!(out, Value::int(45_000));
    // Others untouched.
    let ann = db
        .execute(r#"retrieve (the((retrieve (e.salary) from e in Emps where e.ename = "Ann")))"#)
        .unwrap();
    assert_eq!(ann, Value::int(50_000));
    // Calls compose.
    db.execute(r#"call give_raise("Bob", 1000) call give_raise("Ann", 1)"#)
        .unwrap();
    let bob = db
        .execute(r#"retrieve (the((retrieve (e.salary) from e in Emps where e.ename = "Bob")))"#)
        .unwrap();
    assert_eq!(bob, Value::int(46_000));
}

#[test]
fn procedures_can_mix_queries_and_updates() {
    let mut db = payroll();
    db.execute(
        r#"define procedure snapshot_and_trim (floor: int4)
           {
             retrieve (e.ename) from e in Emps where e.salary < floor into Victims
             delete from Emps where Emps.salary < floor
             retrieve (count(Emps))
           }"#,
    )
    .unwrap();
    let remaining = db.execute("call snapshot_and_trim(45000)").unwrap();
    assert_eq!(remaining, Value::int(2));
    let victims = db.execute("retrieve (Victims)").unwrap();
    assert_eq!(victims, Value::set([Value::str("Bob")]));
}

#[test]
fn collection_arguments_pass_by_value() {
    let mut db = payroll();
    db.execute(
        r#"define procedure keep_only (names: { char[] })
           {
             delete from Emps where not (Emps.ename in names)
           }"#,
    )
    .unwrap();
    db.execute(r#"call keep_only({ "Ann", "Cat" })"#).unwrap();
    let out = db
        .execute("retrieve unique (e.ename) from e in Emps")
        .unwrap();
    assert_eq!(out, Value::set([Value::str("Ann"), Value::str("Cat")]));
}

#[test]
fn argument_arity_and_domain_errors() {
    let mut db = payroll();
    db.execute(r#"define procedure p (n: int4) { retrieve (n + 1) }"#)
        .unwrap();
    assert!(db.execute("call p()").is_err());
    assert!(db.execute(r#"call p("nope")"#).is_err());
    assert!(db.execute("call nope(1)").is_err());
    assert_eq!(db.execute("call p(41)").unwrap(), Value::int(42));
}

#[test]
fn parameters_shadowed_by_range_variables() {
    let mut db = payroll();
    // The parameter `e` must not capture the range variable `e`.
    db.execute(
        r#"define procedure count_above (e: int4)
           { retrieve (count((retrieve (x) from x in Emps where x.salary > e))) }"#,
    )
    .unwrap();
    assert_eq!(
        db.execute("call count_above(45000)").unwrap(),
        Value::int(2)
    );
}
