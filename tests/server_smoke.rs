//! End-to-end server smoke test: start a real TCP server over the
//! benchmark mix database, drive it with the line protocol, and check
//! wire results are canon-identical to in-process session results.

use excess_bench::server_mix::{server_mix_db, MIX};
use excess_core::json::parse_json;
use excess_db::{value_json, VersionedDb};
use excess_server::{serve, Client};

/// The `"value":…` payload of a response line (always the last field).
fn value_field(response: &str) -> &str {
    let idx = response.find("\"value\":").expect("response has a value");
    &response[idx + "\"value\":".len()..response.len() - 1]
}

#[test]
fn figure_mix_over_the_wire_matches_in_process() {
    let vdb = VersionedDb::new(server_mix_db(40));
    let handle = serve(vdb.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut session = vdb.begin_session();

    for (label, src) in MIX {
        let response = client.request(src).expect("request");
        let parsed = parse_json(&response).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            parsed.get("ok").and_then(|v| v.as_bool()),
            Some(true),
            "{label}: {response}"
        );
        let out = session.query(src).expect("in-process query");
        assert_eq!(
            parsed.get("rows").and_then(|v| v.as_f64()),
            Some(out.rows as f64),
            "{label}"
        );
        let local = value_json(&session.canon(&out.value));
        assert_eq!(value_field(&response), local, "{label}: wire vs in-process");
    }

    // Clean close, then clean shutdown.
    let bye = client.request(".close").expect("close");
    assert!(bye.contains("\"closing\":true"), "{bye}");
    let vdb = handle.shutdown();
    let stats = vdb.stats();
    // The connection's session plus our in-process one (still open).
    assert!(stats.sessions_opened >= 2, "{stats:?}");
    assert!(stats.sessions_closed >= 1, "{stats:?}");
    drop(session);
    assert!(vdb.shutdown().is_some(), "committer returns the master db");
}

#[test]
fn wire_commits_are_visible_to_refreshed_connections() {
    let vdb = VersionedDb::new(server_mix_db(20));
    let handle = serve(vdb, "127.0.0.1:0").expect("bind");
    let mut writer = Client::connect(handle.addr()).expect("connect writer");
    let mut reader = Client::connect(handle.addr()).expect("connect reader");

    let before = reader
        .request("retrieve (E1.ename) where E1.esal > 9000")
        .expect("probe");
    let before = parse_json(&before).expect("json");
    let baseline = before.get("rows").and_then(|v| v.as_f64()).unwrap();

    let commit = writer
        .request(".commit append to E1 ((ename: \"wire\", esal: 9500))")
        .expect("commit");
    let commit = parse_json(&commit).expect("json");
    assert_eq!(commit.get("ok").and_then(|v| v.as_bool()), Some(true));
    let generation = commit.get("generation").and_then(|v| v.as_f64()).unwrap();
    assert!(generation >= 1.0);

    // The reader's snapshot is pinned: no change until it refreshes.
    let pinned = reader
        .request("retrieve (E1.ename) where E1.esal > 9000")
        .expect("pinned probe");
    let pinned = parse_json(&pinned).expect("json");
    assert_eq!(pinned.get("rows").and_then(|v| v.as_f64()), Some(baseline));

    let refreshed = reader.request(".refresh").expect("refresh");
    let refreshed = parse_json(&refreshed).expect("json");
    assert_eq!(
        refreshed.get("generation").and_then(|v| v.as_f64()),
        Some(generation)
    );
    let after = reader
        .request("retrieve (E1.ename) where E1.esal > 9000")
        .expect("refreshed probe");
    let after = parse_json(&after).expect("json");
    assert_eq!(
        after.get("rows").and_then(|v| v.as_f64()),
        Some(baseline + 1.0)
    );

    let vdb = handle.shutdown();
    vdb.shutdown();
}

#[test]
fn memo_and_reoptimize_dot_commands_answer_over_the_wire() {
    let vdb = VersionedDb::new(server_mix_db(20));
    let handle = serve(vdb, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Before any query both commands explain themselves instead of
    // hanging up the connection.
    let memo = client.request(".memo").expect("memo");
    let parsed = parse_json(&memo).expect("json");
    assert_eq!(
        parsed.get("ok").and_then(|v| v.as_bool()),
        Some(false),
        "{memo}"
    );
    let reopt = client.request(".reoptimize").expect("reoptimize");
    let parsed = parse_json(&reopt).expect("json");
    assert_eq!(
        parsed.get("ok").and_then(|v| v.as_bool()),
        Some(false),
        "{reopt}"
    );

    let (_, src) = MIX[0];
    let ran = client.request(src).expect("query");
    assert!(ran.starts_with("{\"ok\":true"), "{ran}");

    // After a query the answer depends on the session's search strategy
    // ($EXCESS_OPTIMIZER): memo mode renders the group picture, greedy
    // mode explains that no memo exists.  Either way the line is JSON.
    let memo = client.request(".memo").expect("memo");
    let parsed = parse_json(&memo).expect("json");
    match parsed.get("ok").and_then(|v| v.as_bool()) {
        Some(true) => assert!(memo.contains("memo:") && memo.contains("winner:"), "{memo}"),
        _ => assert!(memo.contains("memo"), "{memo}"),
    }
    let reopt = client.request(".reoptimize").expect("reoptimize");
    let parsed = parse_json(&reopt).expect("json");
    if parsed.get("ok").and_then(|v| v.as_bool()) == Some(true) {
        assert!(reopt.contains("re-optimization"), "{reopt}");
    } else {
        assert!(reopt.contains("re-optimize"), "{reopt}");
    }

    let vdb = handle.shutdown();
    vdb.shutdown();
}

#[test]
fn connection_metrics_reach_the_global_registry_after_shutdown() {
    let vdb = VersionedDb::new(server_mix_db(20));
    let handle = serve(vdb, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (_, src) in MIX {
        let response = client.request(src).expect("request");
        assert!(response.starts_with("{\"ok\":true"), "{response}");
    }
    // Dropping the socket (no `.close`) must still close the session
    // server-side and merge its metrics.
    drop(client);
    let vdb = handle.shutdown();
    let global = vdb.global_registry();
    assert_eq!(global.counter("queries"), MIX.len() as u64);
    assert!(global.histogram("query_us").is_some());
    vdb.shutdown();
}
