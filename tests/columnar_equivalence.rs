//! Equivalence battery for the columnar kernels.
//!
//! The columnar pipeline encodes base extents into column chunks and runs
//! vectorized kernels (scan, hash equi-join, hash group, hash distinct)
//! where the lowering proves them chunk-safe.  This suite generates random
//! extents — nullable cells (`dne`/`unk`), duplicate occurrences with
//! multiset weights, empty extents, all-null columns — and random
//! chunk-compilable-or-not predicates, then asserts:
//!
//! * serial columnar execution is canon-identical *and counter-identical*
//!   to the row evaluator (when the lowering refuses, the plan simply is
//!   the row plan, and the assertion holds trivially);
//! * partition-parallel columnar execution (`EXCESS_THREADS=4`
//!   configuration) stays canon-identical;
//! * `Chunk::slice` is a partition: the row-range slices of a chunk
//!   ⊎-sum back to the whole chunk's decoding.

use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::db::{Database, ExecConfig};
use excess::types::{Chunk, MultiSet, Null, SchemaType, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ------------------------------------------------------------- generators

/// One nullable int cell: mostly values, sometimes one of the two nulls.
fn arb_int_cell() -> impl Strategy<Value = Value> {
    (0i32..8).prop_map(|i| match i {
        6 => Value::Null(Null::Dne),
        7 => Value::Null(Null::Unk),
        v => Value::int(v),
    })
}

/// One nullable string cell over a small alphabet.
fn arb_str_cell() -> impl Strategy<Value = Value> {
    (0i32..6).prop_map(|i| match i {
        4 => Value::Null(Null::Dne),
        5 => Value::Null(Null::Unk),
        v => Value::str(format!("s{v}")),
    })
}

/// Rows for the left extent `L(a, b, k)`: nullable ints and strings with
/// multiset weights 1–3.
fn arb_left_rows() -> impl Strategy<Value = Vec<(Value, Value, Value, u64)>> {
    prop::collection::vec(
        (arb_int_cell(), arb_str_cell(), arb_int_cell(), 1u64..4),
        0..14,
    )
}

/// Rows for the right extent `R(j, c)` — field names disjoint from `L`'s.
fn arb_right_rows() -> impl Strategy<Value = Vec<(Value, Value, u64)>> {
    prop::collection::vec((arb_int_cell(), arb_str_cell(), 1u64..4), 0..12)
}

/// One comparison the scan compiler accepts: bare attribute vs literal.
fn arb_cmp() -> impl Strategy<Value = Pred> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    (op, any::<bool>(), 0i32..6).prop_map(|(op, on_int, lit)| {
        if on_int {
            Pred::cmp(Expr::input().extract("a"), op, Expr::int(lit))
        } else {
            Pred::cmp(
                Expr::input().extract("b"),
                op,
                Expr::str(format!("s{}", lit % 4)),
            )
        }
    })
}

/// A 1–2 conjunct filter; occasionally wrapped in `Not` so the battery
/// also covers predicates the chunk compiler *refuses* (the row fallback
/// must then carry the query unchanged).
fn arb_pred() -> impl Strategy<Value = Pred> {
    (arb_cmp(), arb_cmp(), any::<bool>(), any::<bool>()).prop_map(|(p, q, two, negate)| {
        let base = if two { p.and(q) } else { p };
        if negate {
            Pred::Not(Box::new(base))
        } else {
            base
        }
    })
}

fn left_schema() -> SchemaType {
    SchemaType::set(SchemaType::tuple([
        ("a", SchemaType::int4()),
        ("b", SchemaType::chars()),
        ("k", SchemaType::int4()),
    ]))
}

fn right_schema() -> SchemaType {
    SchemaType::set(SchemaType::tuple([
        ("j", SchemaType::int4()),
        ("c", SchemaType::chars()),
    ]))
}

fn build_db(left: &[(Value, Value, Value, u64)], right: &[(Value, Value, u64)]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.set_threads(1);
    let mut l = MultiSet::new();
    for (a, b, k, w) in left {
        l.insert_n(
            Value::tuple([("a", a.clone()), ("b", b.clone()), ("k", k.clone())]),
            *w,
        );
    }
    let mut r = MultiSet::new();
    for (j, c, w) in right {
        r.insert_n(Value::tuple([("j", j.clone()), ("c", c.clone())]), *w);
    }
    db.put_object("L", left_schema(), Value::Set(l));
    db.put_object("R", right_schema(), Value::Set(r));
    db.collect_stats();
    db
}

/// The four plan shapes the columnar lowering can upgrade.
fn plans(pred: &Pred) -> Vec<(&'static str, Expr)> {
    vec![
        ("scan", Expr::named("L").select(pred.clone())),
        (
            "join",
            Expr::named("L").rel_join(
                Expr::named("R"),
                Pred::cmp(
                    Expr::input().extract("k"),
                    CmpOp::Eq,
                    Expr::input().extract("j"),
                ),
            ),
        ),
        (
            "group",
            Expr::named("L").group_by(Expr::input().extract("a")),
        ),
        ("distinct", Expr::named("L").dup_elim()),
    ]
}

fn canon(db: &Database, v: &Value) -> Value {
    excess::algebra::canon::canonical_form(v, db.store())
}

// ------------------------------------------------------------- properties

fn check_serial(left: &[(Value, Value, Value, u64)], right: &[(Value, Value, u64)], pred: &Pred) {
    let mut db = build_db(left, right);
    for (label, plan) in plans(pred) {
        // Row baseline: the lowered plan *without* the columnar pass —
        // the same row kernels (hash join/group/distinct) the columnar
        // kernels must replicate counter-for-counter.
        let row_pp = db.lower_plan(&plan);
        let row_value = db.run_plan_physical(&row_pp).unwrap();
        let row_counters = db.last_counters();
        // And the plain evaluator confirms the value itself.
        let eval_value = db.run_plan(&plan).unwrap();
        assert_eq!(
            canon(&db, &row_value),
            canon(&db, &eval_value),
            "{label}: row kernels diverged from plain evaluation"
        );
        let (pp, _) = db.lower_plan_columnar(&plan);
        let col_value = db.run_plan_physical(&pp).unwrap();
        let col_counters = db.last_counters();
        assert_eq!(
            canon(&db, &row_value),
            canon(&db, &col_value),
            "{label}: columnar result diverged\nplan: {plan}"
        );
        assert_eq!(
            row_counters,
            col_counters,
            "{label}: columnar counters diverged\nplan: {plan}\nphysical:\n{}",
            pp.render()
        );
    }
}

fn check_parallel(left: &[(Value, Value, Value, u64)], right: &[(Value, Value, u64)], pred: &Pred) {
    for (label, plan) in plans(pred) {
        let mut serial_db = build_db(left, right);
        let expected = serial_db.run_plan(&plan).unwrap();
        let mut db = build_db(left, right);
        db.columnar = true;
        db.set_exec_config(ExecConfig::with_workers(4));
        let got = db.run_query_plan(label, &plan).unwrap();
        assert_eq!(
            canon(&serial_db, &expected),
            canon(&db, &got),
            "{label}: parallel columnar result diverged\nplan: {plan}"
        );
    }
}

fn check_slices(left: &[(Value, Value, Value, u64)]) {
    let db = build_db(left, &[]);
    let Some(Value::Set(set)) = db.catalog().value("L").cloned() else {
        panic!("L is a set");
    };
    let Some(chunk) = Chunk::encode(&set, &BTreeSet::new()) else {
        return; // non-uniform rows never chunk-encode; nothing to split
    };
    // Slices at every boundary are a partition of the rows: the decoded
    // pieces ⊎-sum back to the full decoding, and lengths telescope.
    for split in 0..=chunk.len() {
        let lo = chunk.slice(0, split);
        let hi = chunk.slice(split, chunk.len());
        assert_eq!(lo.len() + hi.len(), chunk.len());
        assert_eq!(
            lo.total_occurrences() + hi.total_occurrences(),
            chunk.total_occurrences()
        );
        let merged = lo.decode().additive_union(hi.decode());
        assert_eq!(merged, chunk.decode(), "slice at {split} lost rows");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn columnar_kernels_match_the_row_evaluator(
        left in arb_left_rows(),
        right in arb_right_rows(),
        pred in arb_pred()
    ) {
        check_serial(&left, &right, &pred);
    }

    #[test]
    fn columnar_pipeline_matches_under_parallel_execution(
        left in arb_left_rows(),
        right in arb_right_rows(),
        pred in arb_pred()
    ) {
        check_parallel(&left, &right, &pred);
    }

    #[test]
    fn chunk_slices_partition_the_extent(left in arb_left_rows()) {
        check_slices(&left);
    }
}

// ------------------------------------------------------------- edge cases

/// An extent whose `k` column is `dne` in every row still chunk-encodes
/// (all-null column), scans identically, and refuses the columnar join on
/// the nullable key while the row kernel answers.
#[test]
fn all_dne_column_scans_identically_and_refuses_the_join() {
    let left: Vec<(Value, Value, Value, u64)> = (0..8)
        .map(|i| {
            (
                Value::int(i % 3),
                Value::str(format!("s{}", i % 2)),
                Value::Null(Null::Dne),
                (i % 2 + 1) as u64,
            )
        })
        .collect();
    let right: Vec<(Value, Value, u64)> = (0..6)
        .map(|i| (Value::int(i % 3), Value::str("s0"), 1))
        .collect();
    let pred = Pred::cmp(Expr::input().extract("k"), CmpOp::Eq, Expr::int(1));
    check_serial(&left, &right, &pred);

    let mut db = build_db(&left, &right);
    let join = &plans(&pred)[1].1;
    let (pp, journal) = db.lower_plan_columnar(join);
    assert!(
        !pp.choices.values().any(|c| c.op.is_columnar()),
        "an all-dne key column must refuse the columnar join"
    );
    assert!(
        journal
            .refused
            .iter()
            .any(|r| r.rule == "columnar-lowering"),
        "the refusal must be journaled"
    );
}

/// Empty extents chunk-encode to zero-row chunks and run through every
/// kernel shape.
#[test]
fn empty_extents_run_through_all_kernels() {
    let pred = Pred::cmp(Expr::input().extract("a"), CmpOp::Ge, Expr::int(2));
    check_serial(&[], &[], &pred);
    check_parallel(&[], &[], &pred);
}

/// With nulls kept out, the lowering must actually upgrade all four
/// kernels — guarding against a regression where every case silently
/// falls back to rows and the battery compares the row path to itself.
#[test]
fn null_free_extents_upgrade_all_four_kernels() {
    let left: Vec<(Value, Value, Value, u64)> = (0..24)
        .map(|i| {
            (
                Value::int(i % 5),
                Value::str(format!("s{}", i % 3)),
                Value::int(i % 4),
                (i % 3 + 1) as u64,
            )
        })
        .collect();
    let right: Vec<(Value, Value, u64)> = (0..12)
        .map(|i| (Value::int(i % 4), Value::str(format!("s{}", i % 2)), 1))
        .collect();
    let pred = Pred::cmp(Expr::input().extract("a"), CmpOp::Lt, Expr::int(3));
    let mut db = build_db(&left, &right);
    for (label, plan) in plans(&pred) {
        let (pp, _) = db.lower_plan_columnar(&plan);
        assert!(
            pp.choices.values().any(|c| c.op.is_columnar()),
            "{label} must upgrade on null-free extents:\n{}",
            pp.render()
        );
    }
    check_serial(&left, &right, &pred);
    check_parallel(&left, &right, &pred);
}
