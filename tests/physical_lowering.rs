//! Lowering soundness: `eval(lower(p))` is canon-identical to `eval(p)`
//! for randomly generated join pipelines — serially and through the
//! partition-parallel engine — plus the negative cases: a non-equi
//! `COMP` predicate must lower to a nested loop, and a hash choice whose
//! runtime guard fails (null join keys) must fall back without changing
//! results *or counters*.

use excess::algebra::canonical_form;
use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::algebra::physical::PhysOp;
use excess::db::Database;
use excess::types::{SchemaType, Value};
use proptest::prelude::*;

/// The shape of one generated pipeline: optional filters around an
/// optional join of `L{k,v}` with `R{j,w}`.
#[derive(Debug, Clone)]
struct Pipe {
    pre_dup: bool,
    pre_sel: Option<i32>,
    join: Join,
    post_sel: Option<i32>,
    post_dup: bool,
}

#[derive(Debug, Clone)]
enum Join {
    /// `L.k = R.j` — hashable.
    Equi,
    /// `L.k = R.j and L.v >= c` — hashable with a residual conjunct.
    EquiResidual(i32),
    /// `L.k <= R.j` — not hashable; must stay a nested loop.
    NonEqui,
    /// No join at all.
    None,
}

fn maybe_bound() -> impl Strategy<Value = Option<i32>> {
    prop_oneof![Just(None), (-2i32..6).prop_map(Some)]
}

fn arb_pipe() -> impl Strategy<Value = Pipe> {
    (
        (any::<bool>(), maybe_bound()),
        prop_oneof![
            Just(Join::Equi),
            (-2i32..6).prop_map(Join::EquiResidual),
            Just(Join::NonEqui),
            Just(Join::None),
        ],
        maybe_bound(),
        any::<bool>(),
    )
        .prop_map(|((pre_dup, pre_sel), join, post_sel, post_dup)| Pipe {
            pre_dup,
            pre_sel,
            join,
            post_sel,
            post_dup,
        })
}

fn build(p: &Pipe) -> Expr {
    let mut e = Expr::named("L");
    if p.pre_dup {
        e = e.dup_elim();
    }
    if let Some(c) = p.pre_sel {
        e = e.select(Pred::cmp(
            Expr::input().extract("v"),
            CmpOp::Ge,
            Expr::int(c),
        ));
    }
    let equi = || {
        Pred::cmp(
            Expr::input().extract("k"),
            CmpOp::Eq,
            Expr::input().extract("j"),
        )
    };
    match p.join {
        Join::Equi => e = e.rel_join(Expr::named("R"), equi()),
        Join::EquiResidual(c) => {
            e = e.rel_join(
                Expr::named("R"),
                Pred::And(
                    Box::new(equi()),
                    Box::new(Pred::cmp(
                        Expr::input().extract("v"),
                        CmpOp::Ge,
                        Expr::int(c),
                    )),
                ),
            );
        }
        Join::NonEqui => {
            e = e.rel_join(
                Expr::named("R"),
                Pred::cmp(
                    Expr::input().extract("k"),
                    CmpOp::Le,
                    Expr::input().extract("j"),
                ),
            );
        }
        Join::None => {}
    }
    if let Some(c) = p.post_sel {
        e = e.select(Pred::cmp(
            Expr::input().extract("v"),
            CmpOp::Ge,
            Expr::int(c),
        ));
    }
    if p.post_dup {
        e = e.dup_elim();
    }
    e
}

fn l_tuple(k: i32, v: i32) -> Value {
    Value::tuple([("k", Value::int(k)), ("v", Value::int(v))])
}

fn r_tuple(j: i32, w: i32) -> Value {
    Value::tuple([("j", Value::int(j)), ("w", Value::int(w))])
}

fn database(l: &[(i32, i32)], r: &[(i32, i32)]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "L",
        SchemaType::set(SchemaType::tuple([
            ("k", SchemaType::int4()),
            ("v", SchemaType::int4()),
        ])),
        Value::set(l.iter().map(|&(k, v)| l_tuple(k, v))),
    );
    db.put_object(
        "R",
        SchemaType::set(SchemaType::tuple([
            ("j", SchemaType::int4()),
            ("w", SchemaType::int4()),
        ])),
        Value::set(r.iter().map(|&(j, w)| r_tuple(j, w))),
    );
    db.collect_stats();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The tentpole's soundness property: whatever kernels the lowering
    // picks (hash or nested loop, guard-passed or guard-refused), the
    // lowered plan evaluates canon-identically to the logical plan —
    // through the serial physical interpreter and through the
    // partition-parallel engine alike.
    #[test]
    fn lowered_plans_are_canon_identical_in_both_engines(
        pipe in arb_pipe(),
        l in prop::collection::vec((0i32..6, -4i32..8), 8..20),
        r in prop::collection::vec((0i32..6, -4i32..8), 8..14)
    ) {
        let plan = build(&pipe);
        let mut db = database(&l, &r);
        let logical = db.run_plan(&plan).unwrap();
        let physical = db.lower_plan(&plan);
        prop_assert_eq!(&physical.logical, &plan, "lowering altered the tree");

        let serial = db.run_plan_physical(&physical).unwrap();
        prop_assert_eq!(
            canonical_form(&logical, db.store()),
            canonical_form(&serial, db.store()),
            "serial physical run diverged on {} ({:?})", plan, pipe
        );

        db.set_threads(4);
        let parallel = db.run_plan_physical_parallel(&physical).unwrap();
        prop_assert_eq!(
            canonical_form(&logical, db.store()),
            canonical_form(&parallel, db.store()),
            "parallel physical run diverged on {} ({:?})", plan, pipe
        );
    }
}

/// With dense inputs and a hashable predicate, lowering must actually
/// choose the hash kernel, and the kernel must perform strictly fewer
/// predicate comparisons than the nested loop while producing the same
/// multiset.
#[test]
fn lowered_hash_join_counts_strictly_fewer_comparisons() {
    let l: Vec<(i32, i32)> = (0..16).map(|i| (i % 4, i)).collect();
    let r: Vec<(i32, i32)> = (0..8).map(|i| (i % 4, 10 * i)).collect();
    let plan = build(&Pipe {
        pre_dup: false,
        pre_sel: None,
        join: Join::Equi,
        post_sel: None,
        post_dup: false,
    });
    let mut db = database(&l, &r);

    let logical = db.run_plan(&plan).unwrap();
    let nested = db.last_counters();

    let physical = db.lower_plan(&plan);
    let root = physical.choices.get(&Vec::new()).expect("root choice");
    assert!(
        matches!(root.op, PhysOp::HashEquiJoin { .. }),
        "expected a hash kernel, got {:?} ({})",
        root.op,
        root.why
    );
    let hashed = db.run_plan_physical(&physical).unwrap();
    let hash = db.last_counters();

    assert_eq!(
        canonical_form(&logical, db.store()),
        canonical_form(&hashed, db.store())
    );
    assert!(
        hash.comparisons < nested.comparisons,
        "hash {} vs nested {}",
        hash.comparisons,
        nested.comparisons
    );
}

/// The negative case the issue calls out: a `COMP` whose predicate has no
/// equi conjunct (`L.k <= R.j`) must lower to a nested loop, with the
/// refusal journaled.
#[test]
fn non_equi_comp_lowers_to_nested_loop() {
    let l: Vec<(i32, i32)> = (0..16).map(|i| (i, i)).collect();
    let r: Vec<(i32, i32)> = (0..8).map(|i| (i, i)).collect();
    let plan = build(&Pipe {
        pre_dup: false,
        pre_sel: None,
        join: Join::NonEqui,
        post_sel: None,
        post_dup: false,
    });
    let mut db = database(&l, &r);
    let (physical, journal) = db.lower_plan_journaled(&plan);
    let root = physical.choices.get(&Vec::new()).expect("root choice");
    assert_eq!(root.op, PhysOp::NestedLoopJoin, "{}", root.why);
    assert!(
        journal
            .refused
            .iter()
            .any(|s| s.rule == excess::optimizer::LOWERING_RULE
                && s.reason.contains("no hashable equi conjunct")),
        "refusal not journaled: {:?}",
        journal.refused
    );
    // And the nested-loop plan still evaluates identically.
    let logical = db.run_plan(&plan).unwrap();
    let nested = db.last_counters();
    let physical_out = db.run_plan_physical(&physical).unwrap();
    assert_eq!(logical, physical_out);
    assert_eq!(
        nested,
        db.last_counters(),
        "pass-through must not change work"
    );
}

/// A hash choice whose runtime guard fails — here because some join keys
/// are the `dne` null — must silently fall back to the nested loop:
/// same value, same counters, no reliance on the statistics being right.
#[test]
fn guard_failure_falls_back_to_the_nested_loop() {
    let mut l: Vec<Value> = (0..16).map(|i| l_tuple(i % 4, i)).collect();
    l.push(Value::tuple([("k", Value::dne()), ("v", Value::int(99))]));
    let r: Vec<(i32, i32)> = (0..8).map(|i| (i % 4, i)).collect();

    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "L",
        SchemaType::set(SchemaType::tuple([
            ("k", SchemaType::int4()),
            ("v", SchemaType::int4()),
        ])),
        Value::set(l),
    );
    db.put_object(
        "R",
        SchemaType::set(SchemaType::tuple([
            ("j", SchemaType::int4()),
            ("w", SchemaType::int4()),
        ])),
        Value::set(r.iter().map(|&(j, w)| r_tuple(j, w))),
    );
    db.collect_stats();

    let plan = build(&Pipe {
        pre_dup: false,
        pre_sel: None,
        join: Join::Equi,
        post_sel: None,
        post_dup: false,
    });
    let physical = db.lower_plan(&plan);
    let root = physical.choices.get(&Vec::new()).expect("root choice");
    assert!(
        matches!(root.op, PhysOp::HashEquiJoin { .. }),
        "statistics should still pick the hash kernel: {:?}",
        root.op
    );

    let logical = db.run_plan(&plan).unwrap();
    let nested = db.last_counters();
    let physical_out = db.run_plan_physical(&physical).unwrap();
    let fallback = db.last_counters();

    assert_eq!(
        canonical_form(&logical, db.store()),
        canonical_form(&physical_out, db.store())
    );
    assert_eq!(
        nested, fallback,
        "a refused guard must run the exact nested loop"
    );
}
