//! Shared fixture for the rewrite-soundness test suites: a database with
//! the Figure 1 inheritance hierarchy plus nested/array objects, and a
//! battery of seed plans chosen so that every transformation-rule family
//! fires somewhere.  `rule_soundness.rs` checks the rewrites by
//! *evaluation*; `property_rewrites.rs` checks them *statically* (schema
//! preservation + no new diagnostics) — both over this same battery.

#![allow(dead_code)]

use excess::algebra::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess::db::Database;
use excess::types::{SchemaType, Value};

pub fn database() -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.execute(
        r#"define type Person: (name: char[], grp: int4)
           define type Employee: (salary: int4) inherits Person
           define type Student: (gpa: float4) inherits Person
           define type Person2Cell: (x: int4, y: char[])"#,
    )
    .unwrap();
    // Deterministic pseudo-random data with duplicates.
    let tup = |i: i32| {
        Value::tuple([
            ("name", Value::str(format!("n{}", i % 5))),
            ("grp", Value::int(i % 3)),
        ])
    };
    let emp = |i: i32| {
        Value::tuple([
            ("name", Value::str(format!("n{}", i % 5))),
            ("grp", Value::int(i % 3)),
            ("salary", Value::int(1000 + i)),
        ])
    };
    let stu = |i: i32| {
        Value::tuple([
            ("name", Value::str(format!("n{}", i % 5))),
            ("grp", Value::int(i % 3)),
            ("gpa", Value::float(f64::from(i % 4))),
        ])
    };
    db.put_object(
        "S",
        SchemaType::set(SchemaType::named("Person")),
        Value::set((0..12).map(tup)),
    );
    db.put_object(
        "T",
        SchemaType::set(SchemaType::named("Person")),
        Value::set((3..9).map(tup)),
    );
    db.put_object(
        "Mixed",
        SchemaType::set(SchemaType::named("Person")),
        Value::set(
            (0..4)
                .map(tup)
                .chain((4..8).map(emp))
                .chain((8..12).map(stu)),
        ),
    );
    db.put_object(
        "Nested",
        SchemaType::set(SchemaType::set(SchemaType::int4())),
        Value::set((0..4).map(|i| Value::set((0..=i).map(Value::int)))),
    );
    db.put_object(
        "Arr",
        SchemaType::array(SchemaType::int4()),
        Value::array((0..9).map(|i| Value::int(i % 4))),
    );
    db.put_object(
        "ArrB",
        SchemaType::array(SchemaType::int4()),
        Value::array((2..6).map(Value::int)),
    );
    db.put_object(
        "ArrNested",
        SchemaType::array(SchemaType::array(SchemaType::int4())),
        Value::array((0..3).map(|i| Value::array((0..=i).map(Value::int)))),
    );
    db.put_object(
        "OneTup",
        SchemaType::tuple([("x", SchemaType::int4()), ("y", SchemaType::chars())]),
        Value::tuple([("x", Value::int(4)), ("y", Value::str("hi"))]),
    );
    db
}

pub fn name_pred() -> Pred {
    Pred::cmp(Expr::input().extract("name"), CmpOp::Eq, Expr::str("n1"))
}

pub fn grp_pred() -> Pred {
    Pred::cmp(Expr::input().extract("grp"), CmpOp::Eq, Expr::int(1))
}

/// Seed plans chosen so that every rule family fires somewhere.
pub fn seeds() -> Vec<Expr> {
    let s = || Expr::named("S");
    let t = || Expr::named("T");
    let arr = || Expr::named("Arr");
    vec![
        // rule 1 / 2 / 11 / 12: unions, collapse, apply distribution
        s().add_union(t().add_union(s())),
        s().cross(t().add_union(s())),
        Expr::named("Nested")
            .set_collapse()
            .set_apply(Expr::input()),
        Expr::SetCollapse(Box::new(
            s().add_union(t()).set_apply(Expr::input().make_set()),
        )),
        Expr::SetCollapse(Box::new(
            Expr::named("Nested").add_union(Expr::named("Nested")),
        )),
        s().add_union(t()).set_apply(Expr::input().extract("name")),
        // rule 4: disjunctive selection (¬(¬a ∧ ¬b))
        s().select(Pred::Not(Box::new(name_pred().not().and(grp_pred().not())))),
        // rule 5: DE over SET_APPLY over ×, fst-only body
        Expr::DupElim(Box::new(
            s().cross(t())
                .set_apply(Expr::input().extract("fst").extract("name")),
        )),
        // rules 6, 8, 10: grouping pipelines
        s().group_by(Expr::input().extract("grp")).dup_elim(),
        s().dup_elim().group_by(Expr::input().extract("grp")),
        s().select(name_pred())
            .group_by(Expr::input().extract("grp")),
        // rule 7: DE over ×
        s().cross(t()).dup_elim(),
        // rule 9: GRP over × with fst-only key
        s().cross(t())
            .group_by(Expr::input().extract("fst").extract("grp")),
        // rule 13: SET_APPLY over × with pairwise body
        s().cross(t()).set_apply(
            Expr::input()
                .extract("fst")
                .extract("name")
                .make_tup("fst")
                .tup_cat(Expr::input().extract("snd").extract("grp").make_tup("snd")),
        ),
        // rule 14: SET_APPLY over SET_COLLAPSE
        Expr::named("Nested")
            .set_collapse()
            .set_apply(Expr::input().make_set()),
        // rule 15: successive SET_APPLYs
        s().set_apply(Expr::input().extract("name"))
            .set_apply(Expr::input().make_tup("n")),
        // rules 16–22: arrays
        arr().arr_cat(Expr::named("ArrB").arr_cat(arr())),
        Expr::ArrExtract(
            Box::new(Expr::lit(Value::array([1, 2].map(Value::int))).arr_cat(arr())),
            Bound::At(3),
        ),
        arr().subarr(Bound::At(2), Bound::At(6)).arr_extract(2),
        arr()
            .arr_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(1)]))
            .arr_extract(3),
        arr()
            .subarr(Bound::At(2), Bound::At(7))
            .subarr(Bound::At(2), Bound::At(4)),
        Expr::SubArr(
            Box::new(Expr::lit(Value::array([9, 8].map(Value::int))).arr_cat(arr())),
            Bound::At(2),
            Bound::At(5),
        ),
        arr()
            .arr_apply(Expr::call(Func::Mul, vec![Expr::input(), Expr::int(3)]))
            .subarr(Bound::At(1), Bound::At(4)),
        arr()
            .arr_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(1)]))
            .arr_apply(Expr::call(Func::Mul, vec![Expr::input(), Expr::int(2)])),
        // rules 23–25: tuple algebra
        Expr::named("OneTup").tup_cat(Expr::int(3).make_tup("z")),
        Expr::named("OneTup")
            .tup_cat(Expr::int(3).make_tup("z"))
            .project(["x", "z"]),
        Expr::named("OneTup")
            .tup_cat(Expr::int(3).make_tup("z"))
            .extract("z"),
        // rule 26: π/extract through COMP
        Expr::named("OneTup")
            .comp(Pred::cmp(
                Expr::input().extract("x"),
                CmpOp::Lt,
                Expr::int(10),
            ))
            .project(["x"]),
        Expr::named("OneTup")
            .comp(Pred::cmp(
                Expr::input().extract("x"),
                CmpOp::Lt,
                Expr::int(10),
            ))
            .extract("x"),
        // rule 27: nested COMPs
        Expr::named("OneTup")
            .comp(Pred::cmp(
                Expr::input().extract("x"),
                CmpOp::Lt,
                Expr::int(10),
            ))
            .comp(Pred::cmp(
                Expr::input().extract("x"),
                CmpOp::Gt,
                Expr::int(0),
            )),
        // rule 28: REF/DEREF cancellation (modulo identity)
        Expr::named("OneTup").make_ref("Person2Cell").deref(),
        // rel rules: σ chains, join pushdown, σ over ⊎, DE idempotence
        s().select(name_pred()).select(grp_pred()),
        s().add_union(t()).select(name_pred()),
        s().dup_elim().dup_elim(),
        s().set_apply(Expr::input().extract("name")).dup_elim(),
        // rel6: σ through SET_COLLAPSE (both directions)
        Expr::named("Nested").set_collapse().select(Pred::cmp(
            Expr::input(),
            CmpOp::Ge,
            Expr::int(1),
        )),
        Expr::SetCollapse(Box::new(Expr::named("Nested").set_apply(Expr::Select {
            input: Box::new(Expr::input()),
            pred: Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(2)),
        }))),
        // dispatch rules
        Expr::named("Mixed").set_apply(Expr::call(
            Func::The,
            vec![Expr::SetApplySwitch {
                input: Box::new(Expr::input().make_set()),
                table: vec![
                    ("Person".into(), Expr::input().extract("name")),
                    ("Employee".into(), Expr::input().extract("salary")),
                    ("Student".into(), Expr::input().extract("gpa")),
                ],
            }],
        )),
        Expr::SetApplySwitch {
            input: Box::new(Expr::named("Mixed")),
            table: vec![
                ("Person".into(), Expr::input().extract("name")),
                ("Employee".into(), Expr::input().extract("salary")),
            ],
        },
    ]
}

/// Every rule family the seed battery is expected to exercise — the 28
/// Appendix rules (with 28a and A1 companions), the relational rel1–rel6
/// family, and the two dispatch rules.
pub fn expected_rules() -> &'static [&'static str] {
    &[
        "rule1-assoc",
        "rule2-distribute-cross-over-union",
        "rule4-disjunctive-select",
        "rule5-eliminate-cross",
        "rule6-group-is-dup-free",
        "rule7-distribute-de-cross",
        "rule8-de-through-group",
        "rule9-group-cross-one-side",
        "rule10-group-through-select",
        "rule11-collapse-over-union",
        "rule12-apply-over-union",
        "rule13-apply-over-cross",
        "rule14-apply-into-collapse",
        "rule15-combine-set-applys",
        "rule16-arr-cat-assoc",
        "rule17-extract-from-cat",
        "rule18-extract-from-subarr",
        "rule19-extract-from-apply",
        "rule20-combine-subarrs",
        "rule21-subarr-from-cat",
        "rule22-subarr-through-apply",
        "ruleA1-combine-arr-applys",
        "rule23-tup-cat-commute",
        "rule24-project-over-cat",
        "rule25-extract-from-tup-cat",
        "rule26-push-into-comp",
        "rule27-combine-comps",
        "rule28-ref-deref-cancel",
        "rel1-combine-selects",
        "rel3-select-over-union",
        "rel4-de-idempotent",
        "rel5-de-early",
        "rel6-select-through-collapse",
        "dispatch1-lift-singleton-switch",
        "dispatch2-switch-to-union",
    ]
}
