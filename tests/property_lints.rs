//! Negative-case coverage for the property-analysis lint family: one
//! deliberately redundant (but well-typed) plan per lint class, asserting
//! the exact node path each diagnostic anchors to — plus the suppression
//! and clean directions, so the lints fire only where the analysis has an
//! actual proof.
//!
//! These plans are built over constant collections so the analysis can
//! prove its facts structurally — `verify` runs the property analysis
//! with an empty data catalog, exactly as a client without extent access
//! would.

use excess_core::expr::{CmpOp, Expr, Pred};
use excess_core::verify::{verify, Report, Severity};
use excess_types::{SchemaType, TypeRegistry, Value};
use std::collections::HashMap;

fn report(e: &Expr) -> Report {
    let cat: HashMap<String, SchemaType> = HashMap::new();
    verify(e, &cat, &TypeRegistry::new())
}

/// Assert `r` contains a diagnostic of class `code` at lint severity
/// whose rendered form mentions `path_repr` (e.g. "at [0.1]").
fn assert_lint(r: &Report, code: &str, path_repr: &str) {
    let found = r.diagnostics.iter().any(|d| {
        d.code == code && d.severity == Severity::Lint && d.to_string().contains(path_repr)
    });
    assert!(
        found,
        "expected a lint[{code}] diagnostic at {path_repr}; got:\n{}",
        r.render()
    );
}

fn assert_no_lint(r: &Report, code: &str) {
    assert!(
        !r.diagnostics.iter().any(|d| d.code == code),
        "did not expect any {code}; got:\n{}",
        r.render()
    );
}

fn tup(fields: &[(&str, i32)]) -> Value {
    Value::tuple(fields.iter().map(|(n, v)| (n.to_string(), Value::int(*v))))
}

/// A constant set of distinct tuples — provably duplicate-free with `id`
/// a candidate key.
fn people() -> Expr {
    Expr::lit(Value::set([
        tup(&[("id", 1), ("dept", 10)]),
        tup(&[("id", 2), ("dept", 10)]),
        tup(&[("id", 3), ("dept", 20)]),
    ]))
}

fn empty_set() -> Expr {
    Expr::lit(Value::set(Vec::<Value>::new()))
}

// ------------------------------------------------------- lint-redundant-de

#[test]
fn de_over_proven_duplicate_free_input_lints_at_root() {
    // DE over a constant distinct set: redundant, flagged at the DE node.
    let r = report(&people().dup_elim());
    assert_lint(&r, "lint-redundant-de", "at root");
    assert!(
        r.is_clean(),
        "lints must not dirty the report:\n{}",
        r.render()
    );
}

#[test]
fn de_under_a_selection_lints_at_the_inner_path() {
    // SELECT(DE(people)): the redundant DE sits at [0].
    let plan = people().dup_elim().select(Pred::cmp(
        Expr::input().extract("id"),
        CmpOp::Gt,
        Expr::int(0),
    ));
    assert_lint(&report(&plan), "lint-redundant-de", "at [0]");
}

#[test]
fn de_over_de_is_left_to_the_dedicated_idempotence_lint() {
    // DE(DE(·)) already has a dedicated shape lint; the property lint
    // must stay quiet so the two do not double-report.
    let r = report(&people().dup_elim().dup_elim());
    let property_hits = r
        .diagnostics
        .iter()
        .filter(|d| d.code == "lint-redundant-de")
        .count();
    assert!(
        property_hits <= 1,
        "outer DE(DE) should not stack property lints:\n{}",
        r.render()
    );
}

#[test]
fn de_over_a_duplicated_set_literal_is_not_flagged() {
    let dups = Expr::lit(Value::set([Value::int(1), Value::int(1), Value::int(2)]));
    assert_no_lint(&report(&dups.dup_elim()), "lint-redundant-de");
}

// -------------------------------------------------- lint-redundant-distinct

#[test]
fn arr_de_over_distinct_array_lints_at_root() {
    let arr = Expr::lit(Value::array([Value::int(1), Value::int(2), Value::int(3)]));
    let plan = Expr::ArrDupElim(Box::new(arr));
    assert_lint(&report(&plan), "lint-redundant-distinct", "at root");
}

#[test]
fn arr_de_over_repeating_array_is_not_flagged() {
    let arr = Expr::lit(Value::array([Value::int(1), Value::int(1)]));
    let plan = Expr::ArrDupElim(Box::new(arr));
    assert_no_lint(&report(&plan), "lint-redundant-distinct");
}

// ------------------------------------------------- lint-always-empty-branch

#[test]
fn empty_union_operand_lints_at_the_operand_path() {
    // people ∪⁺ {} — the empty operand is child 1.
    let r = report(&people().add_union(empty_set()));
    assert_lint(&r, "lint-always-empty-branch", "at [1]");
}

#[test]
fn empty_join_side_lints_at_the_operand_path() {
    // {} ⋈ people — the empty side is child 0 of the join.
    let plan = empty_set().rel_join(
        people(),
        Pred::eq(
            Expr::input_at(1).extract("id"),
            Expr::input_at(0).extract("id"),
        ),
    );
    assert_lint(&report(&plan), "lint-always-empty-branch", "at [0]");
}

#[test]
fn nonempty_union_operands_are_not_flagged() {
    let r = report(&people().add_union(people()));
    assert_no_lint(&r, "lint-always-empty-branch");
}

// --------------------------------------------- lint-unsatisfiable-predicate

#[test]
fn contradictory_equalities_lint_at_the_select_node() {
    // σ[x=1 ∧ x=2] — no occurrence can satisfy both.
    let pred = Pred::eq(Expr::input().extract("id"), Expr::int(1))
        .and(Pred::eq(Expr::input().extract("id"), Expr::int(2)));
    let plan = people().select(pred);
    assert_lint(&report(&plan), "lint-unsatisfiable-predicate", "at root");
}

#[test]
fn p_and_not_p_lints_under_an_outer_operator() {
    let p = Pred::eq(Expr::input().extract("id"), Expr::int(1));
    let plan = people().select(p.clone().and(p.not())).dup_elim();
    assert_lint(&report(&plan), "lint-unsatisfiable-predicate", "at [0]");
}

#[test]
fn satisfiable_predicates_are_not_flagged() {
    let pred = Pred::eq(Expr::input().extract("id"), Expr::int(1));
    assert_no_lint(
        &report(&people().select(pred)),
        "lint-unsatisfiable-predicate",
    );
}

// ------------------------------------------------- lint-key-preserving-grp

#[test]
fn grouping_by_a_candidate_key_lints_at_the_grp_node() {
    // GRP by `id`, which the analysis proves is a candidate key of the
    // constant extent: every class is a singleton.
    let plan = people().group_by(Expr::input().extract("id"));
    assert_lint(&report(&plan), "lint-key-preserving-grp", "at root");
}

#[test]
fn grouping_by_a_non_key_is_not_flagged() {
    // `dept` repeats, so grouping by it genuinely merges occurrences.
    let plan = people().group_by(Expr::input().extract("dept"));
    assert_no_lint(&report(&plan), "lint-key-preserving-grp");
}

// -------------------------------------------------------------- composition

#[test]
fn all_lints_coexist_with_exact_paths_in_one_plan() {
    // DE(σ[1=2](people ∪⁺ {})) — three lint classes in one tree:
    //   redundant DE at root (σ over a set stays a set; the unsat σ is
    //   provably empty hence duplicate-free), unsatisfiable predicate at
    //   [0], empty branch at [0.0.1].
    let pred = Pred::eq(Expr::int(1), Expr::int(2));
    let plan = people().add_union(empty_set()).select(pred).dup_elim();
    let r = report(&plan);
    assert_lint(&r, "lint-redundant-de", "at root");
    assert_lint(&r, "lint-unsatisfiable-predicate", "at [0]");
    assert_lint(&r, "lint-always-empty-branch", "at [0.0.1]");
    assert!(r.is_clean(), "lints never dirty a report:\n{}", r.render());
}
