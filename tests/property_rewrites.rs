//! Static soundness of the transformation-rule catalogue: every rewrite
//! the engine can reach must preserve the `infer` output schema and must
//! not introduce any new verifier diagnostic — exactly the invariant the
//! optimizer's rewrite-soundness gate enforces at run time.  Checked two
//! ways: over the deterministic seed battery that exercises every rule
//! family (with a coverage assertion and a log of which rules fired), and
//! over randomly generated well-typed pipelines (proptest).

mod common;

use common::{database, seeds};
use excess::algebra::expr::{CmpOp, Expr, Func, Pred};
use excess::algebra::infer::infer_closed;
use excess::algebra::verify::{resolve_deep, verify, Severity};
use excess::db::Database;
use excess::optimizer::{soundness_violation, Optimizer, RuleCtx};
use excess::types::SchemaType;
use proptest::prelude::*;
use std::collections::HashSet;

/// Every neighbor of `seed` must pass the soundness gate: same
/// deep-resolved output schema, zero new error diagnostics.  Returns the
/// rules that fired.
fn check_neighbors_statically(db: &Database, seed: &Expr) -> HashSet<&'static str> {
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let opt = Optimizer::standard();
    let before_schema = infer_closed(seed, db.catalog(), db.registry())
        .unwrap_or_else(|e| panic!("seed {seed} does not type-check: {e}"));
    let before_report = verify(seed, db.catalog(), db.registry());
    assert!(
        before_report.is_clean(),
        "seed {seed} has verifier errors:\n{}",
        before_report.render()
    );
    let mut fired = HashSet::new();
    for (rule, alt) in opt.neighbors(seed, &ctx) {
        fired.insert(rule);
        if let Some(reason) = soundness_violation(seed, &alt, &ctx) {
            panic!("rule {rule} is statically unsound:\n  {seed}\n→ {alt}\n{reason}");
        }
        // Spelled out (the gate checks the same things internally): the
        // inferred schema is preserved modulo Named-resolution, and the
        // rewritten plan has no error diagnostics at all.
        let after_schema = infer_closed(&alt, db.catalog(), db.registry())
            .unwrap_or_else(|e| panic!("rule {rule} broke inference on {alt}: {e}"));
        assert_eq!(
            resolve_deep(&before_schema, db.registry()),
            resolve_deep(&after_schema, db.registry()),
            "rule {rule} changed the output schema:\n  {seed}\n→ {alt}"
        );
        let after_report = verify(&alt, db.catalog(), db.registry());
        assert!(
            after_report.error_count() == 0,
            "rule {rule} introduced diagnostics on {alt}:\n{}",
            after_report.render()
        );
        for d in after_report.diagnostics {
            assert_ne!(d.severity, Severity::Error);
        }
    }
    fired
}

#[test]
fn every_rule_preserves_schema_and_diagnostics_on_the_seed_battery() {
    let db = database();
    let mut fired: HashSet<&'static str> = HashSet::new();
    for seed in seeds() {
        fired.extend(check_neighbors_statically(&db, &seed));
    }
    // Log which rules the battery exercised (visible with --nocapture).
    let mut names: Vec<_> = fired.iter().copied().collect();
    names.sort_unstable();
    println!("rules exercised statically ({}): {names:?}", names.len());
    for expected in common::expected_rules() {
        assert!(
            fired.contains(expected),
            "rule `{expected}` never fired; fired = {names:?}"
        );
    }
}

#[test]
fn journaled_greedy_refuses_nothing_on_sound_rules() {
    // The gate must be invisible when every rule is sound: no refusals on
    // the whole battery, and the plain/journaled pass stay in lockstep.
    let db = database();
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let opt = Optimizer::standard();
    for seed in seeds() {
        let plain = opt.optimize_greedy(&seed, &ctx, db.statistics());
        let (journaled, journal) = opt.optimize_greedy_journaled(&seed, &ctx, db.statistics());
        assert!(
            journal.refused.is_empty(),
            "gate refused sound rewrites on {seed}: {:?}",
            journal.refused
        );
        assert_eq!(
            plain.plan, journaled.plan,
            "gate changed the outcome of {seed}"
        );
        assert_eq!(plain.explored, journaled.explored);
    }
}

// ------------------------------------------------- random pipelines

/// One pipeline stage over `S : {Person}` (kept well-typed by
/// construction; `Wrapped` tracks set-of-set nesting).
#[derive(Debug, Clone)]
enum Stage {
    DupElim,
    SelectName,
    SelectGrp(i32),
    ProjectName,
    WrapSet,
    Collapse,
    AddUnionT,
    DiffT,
    IntersectT,
    GroupByGrp,
    CountGroups,
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::DupElim),
        Just(Stage::SelectName),
        (0i32..3).prop_map(Stage::SelectGrp),
        Just(Stage::ProjectName),
        Just(Stage::WrapSet),
        Just(Stage::Collapse),
        Just(Stage::AddUnionT),
        Just(Stage::DiffT),
        Just(Stage::IntersectT),
        Just(Stage::GroupByGrp),
        Just(Stage::CountGroups),
    ]
}

/// What the pipeline currently yields: `{Person}`-shaped rows, projected
/// rows, or a nested set-of-sets.
#[derive(Clone, Copy, PartialEq)]
enum Shape {
    Person,
    Projected,
    Nested,
}

fn build(stages: &[Stage]) -> Expr {
    let mut e = Expr::named("S");
    let mut shape = Shape::Person;
    for s in stages {
        match (s, shape) {
            (Stage::DupElim, _) => e = e.dup_elim(),
            (Stage::SelectName, Shape::Person) => e = e.select(common::name_pred()),
            (Stage::SelectGrp(k), Shape::Person) => {
                e = e.select(Pred::cmp(
                    Expr::input().extract("grp"),
                    CmpOp::Eq,
                    Expr::int(*k),
                ));
            }
            (Stage::ProjectName, Shape::Person) => {
                e = e.set_apply(Expr::input().project(["name"]));
                shape = Shape::Projected;
            }
            (Stage::WrapSet, Shape::Person | Shape::Projected) => {
                e = e.set_apply(Expr::input().make_set());
                shape = Shape::Nested;
            }
            (Stage::Collapse, Shape::Nested) => {
                e = e.set_collapse();
                // The collapsed element shape is whatever was wrapped;
                // conservatively treat it as opaque projected rows.
                shape = Shape::Projected;
            }
            (Stage::AddUnionT, Shape::Person) => e = e.add_union(Expr::named("T")),
            (Stage::DiffT, Shape::Person) => e = e.diff(Expr::named("T")),
            (Stage::IntersectT, Shape::Person) => {
                e = Expr::Intersect(Box::new(e), Box::new(Expr::named("T")));
            }
            (Stage::GroupByGrp, Shape::Person) => {
                e = e.group_by(Expr::input().extract("grp"));
                shape = Shape::Nested;
            }
            (Stage::CountGroups, Shape::Nested) => {
                e = e.set_apply(Expr::call(Func::Count, vec![Expr::input()]));
                shape = Shape::Projected;
            }
            // Stage does not apply to the current shape: skip it.
            _ => {}
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_pipelines_rewrite_soundly(
        stages in prop::collection::vec(arb_stage(), 1..8),
    ) {
        let db = database();
        let seed = build(&stages);
        check_neighbors_statically(&db, &seed);
    }

    #[test]
    fn random_pipelines_optimize_without_refusals(
        stages in prop::collection::vec(arb_stage(), 1..6),
    ) {
        let mut db = database();
        let seed = build(&stages);
        let (_, journal) = db.optimize_plan_journaled(&seed);
        prop_assert!(
            journal.refused.is_empty(),
            "gate refused sound rewrites on {}: {:?}",
            seed,
            journal.refused
        );
    }
}

#[test]
fn fixture_objects_are_well_typed() {
    let db = database();
    let r = verify(&Expr::named("S"), db.catalog(), db.registry());
    assert!(r.is_clean());
    assert_eq!(r.schema, Some(SchemaType::set(SchemaType::named("Person"))));
}
