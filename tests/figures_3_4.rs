//! Figures 3 and 4 as *literally drawn* in the paper, evaluated against
//! the translator's output for the corresponding EXCESS text.
//!
//! Figure 3:  π_{name,salary}(DEREF(ARR_EXTRACT_5(TopTen)))
//!
//! Figure 4 (bottom-up):
//!   Employees
//!   → SET_APPLY[DEREF(INPUT)]
//!   → SET_APPLY[COMP_{TUP_EXTRACT_city(INPUT) = "Madison"}(INPUT)]
//!   → SET_APPLY[DEREF(TUP_EXTRACT_dept(INPUT))]
//!   → SET_APPLY[π_name]
//!   (the last node is `π_name` applied per occurrence — the result is "a
//!   multiset of 1-tuples obtained by projecting the name attribute")

use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::workload::{generate, queries, UniversityParams};

#[test]
fn figure3_verbatim_plan_equals_the_excess_query() {
    let mut u = generate(&UniversityParams::tiny()).unwrap();
    u.db.optimize = false;
    let verbatim = Expr::named("TopTen")
        .arr_extract(5)
        .deref()
        .project(["name", "salary"]);
    let direct = u.db.run_plan(&verbatim).unwrap();
    let via_excess = u.db.execute(queries::FIGURE3).unwrap();
    assert_eq!(direct, via_excess);
}

#[test]
fn figure4_verbatim_plan_matches_the_translator_modulo_tuple_shape() {
    let mut u = generate(&UniversityParams::tiny()).unwrap();
    u.db.optimize = false;
    // The paper's four-level pipeline, node for node.
    let verbatim = Expr::named("Employees")
        .set_apply(Expr::input().deref())
        .set_apply(Expr::input().comp(Pred::cmp(
            Expr::input().extract("city"),
            CmpOp::Eq,
            Expr::str("Madison"),
        )))
        .set_apply(Expr::input().extract("dept").deref())
        .set_apply(Expr::input().project(["name"]));
    let paper_result = u.db.run_plan(&verbatim).unwrap();
    // Our translator yields bare names for a single unlabeled target
    // (documented choice); the figure yields 1-tuples.  Unwrap and compare.
    let ours = u.db.execute(queries::FIGURE4).unwrap();
    let unwrapped: excess::types::MultiSet = paper_result
        .as_set()
        .unwrap()
        .iter_occurrences()
        .map(|t| t.as_tuple().unwrap().extract("name").unwrap().clone())
        .collect();
    assert_eq!(excess::types::Value::Set(unwrapped), ours);
    assert!(!paper_result.as_set().unwrap().is_empty());
}

#[test]
fn figure4_counters_show_the_functional_join_shape() {
    // The pipeline dereferences each employee once, then each *qualifying*
    // employee's dept once — a functional join, not a cross product.
    let p = UniversityParams {
        madison_fraction: 0.25,
        ..UniversityParams::tiny()
    };
    let mut u = generate(&p).unwrap();
    u.db.optimize = false;
    let verbatim = Expr::named("Employees")
        .set_apply(Expr::input().deref())
        .set_apply(Expr::input().comp(Pred::cmp(
            Expr::input().extract("city"),
            CmpOp::Eq,
            Expr::str("Madison"),
        )))
        .set_apply(Expr::input().extract("dept").deref())
        .set_apply(Expr::input().project(["name"]));
    let out = u.db.run_plan(&verbatim).unwrap();
    let c = u.db.last_counters();
    let n_emp = 12u64; // tiny() employees
    let n_qualifying = out.as_set().unwrap().len();
    assert_eq!(c.derefs, n_emp + n_qualifying);
    assert_eq!(c.pairs_formed, 0, "a functional join forms no pairs");
    // Four SET_APPLY levels; dne-filtered occurrences stop flowing after
    // the COMP level.
    assert_eq!(c.occurrences_scanned, n_emp * 2 + n_qualifying * 2);
}

#[test]
fn optimizer_keeps_figure4_equivalent() {
    let mut u = generate(&UniversityParams::tiny()).unwrap();
    let plan = u.db.plan_for(queries::FIGURE4).unwrap();
    let optimized = u.db.optimize_plan(&plan);
    assert_eq!(
        u.db.run_plan(&plan).unwrap(),
        u.db.run_plan(&optimized).unwrap()
    );
}
