//! Cost-model calibration: the estimates only matter *ordinally* (the
//! optimizer compares plans), so we check that for plan pairs whose
//! measured work differs decisively, the cost model ranks them the same
//! way.

use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::db::Database;
use excess::optimizer::cost_of;
use excess::types::{SchemaType, Value};

fn measured_work(db: &mut Database, plan: &Expr) -> u64 {
    db.run_plan(plan).unwrap();
    let c = db.last_counters();
    c.occurrences_scanned + c.derefs + c.comparisons + c.pairs_formed + c.de_input_occurrences
}

fn rows_db(n: i32) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "R",
        SchemaType::set(SchemaType::tuple([
            ("k", SchemaType::int4()),
            ("v", SchemaType::int4()),
        ])),
        Value::set((0..n).map(|i| Value::tuple([("k", Value::int(i % 7)), ("v", Value::int(i))]))),
    );
    db.put_object(
        "S",
        SchemaType::set(SchemaType::tuple([("w", SchemaType::int4())])),
        Value::set((0..n / 2).map(|i| Value::tuple([("w", Value::int(i % 5))]))),
    );
    db.collect_stats();
    db
}

/// Check that estimate ordering matches measured ordering whenever the
/// measured gap is at least 4×.
fn check_pairs(db: &mut Database, plans: &[(&str, Expr)]) {
    let stats = db.statistics().clone();
    let measured: Vec<(String, u64, f64)> = plans
        .iter()
        .map(|(n, p)| (n.to_string(), measured_work(db, p), cost_of(p, &stats)))
        .collect();
    for a in &measured {
        for b in &measured {
            if a.1 >= 4 * b.1.max(1) {
                assert!(
                    a.2 > b.2,
                    "measured {} ({}) ≫ {} ({}), but est {} ≤ {}",
                    a.0,
                    a.1,
                    b.0,
                    b.1,
                    a.2,
                    b.2
                );
            }
        }
    }
}

#[test]
fn joins_dominate_scans_in_both_worlds() {
    let mut db = rows_db(200);
    let scan = Expr::named("R").set_apply(Expr::input().extract("v"));
    let join = Expr::named("R").rel_join(
        Expr::named("S"),
        Pred::cmp(
            Expr::input().extract("k"),
            CmpOp::Eq,
            Expr::input().extract("w"),
        ),
    );
    let cross_then_filter = Expr::named("R").cross(Expr::named("S")).select(Pred::cmp(
        Expr::input().extract("fst").extract("k"),
        CmpOp::Eq,
        Expr::input().extract("snd").extract("w"),
    ));
    check_pairs(
        &mut db,
        &[
            ("scan", scan),
            ("join", join),
            ("cross+filter", cross_then_filter),
        ],
    );
}

#[test]
fn de_early_ranks_below_de_late_under_duplication() {
    // R has a heavily duplicated projection (k has 7 distinct values).
    let mut db = rows_db(400);
    let project_k = |e: Expr| e.set_apply(Expr::input().extract("k"));
    let late = project_k(Expr::named("R"))
        .dup_elim()
        .set_apply(Expr::input().make_tup("x"));
    let early = project_k(Expr::named("R"))
        .dup_elim()
        .set_apply(Expr::input().make_tup("x"));
    // Identical here — the interesting pair is mapping BEFORE vs AFTER DE:
    let map_then_de = project_k(Expr::named("R"))
        .set_apply(Expr::input().make_tup("x"))
        .dup_elim();
    let de_then_map = project_k(Expr::named("R"))
        .dup_elim()
        .set_apply(Expr::input().make_tup("x"));
    let _ = (late, early);
    let stats = db.statistics().clone();
    let w1 = measured_work(&mut db, &map_then_de);
    let w2 = measured_work(&mut db, &de_then_map);
    assert!(w2 < w1, "measured: de-first {w2} vs map-first {w1}");
    // The model must agree on the direction (no 4× gate needed — this is
    // the exact trade the optimizer's rel5 rule banks on).
    assert!(
        cost_of(&de_then_map, &stats) < cost_of(&map_then_de, &stats),
        "cost model ranks DE-early above DE-late"
    );
}

#[test]
fn switch_vs_union_ordering_matches_measurement() {
    use excess_bench::dispatch::{dispatch_db, switch_plan, trivial_impls, union_plan};
    let mut db = dispatch_db(300, 0);
    let impls = trivial_impls();
    let sw = switch_plan(&impls);
    let un = union_plan(&db, &impls);
    let stats = db.statistics().clone();
    let m_sw = measured_work(&mut db, &sw);
    let m_un = measured_work(&mut db, &un);
    assert!(m_un > m_sw, "⊎ scans more: {m_un} vs {m_sw}");
    assert!(
        cost_of(&un, &stats) > cost_of(&sw, &stats),
        "the model agrees the switch is cheaper for trivial bodies"
    );
}
