//! EXTRA's object-lifetime semantics: objects live independently of their
//! referencers, but once unreachable from every named top-level object
//! they can be swept.

use excess::db::Database;
use excess::types::Value;

#[test]
fn discarded_mkref_temporaries_are_collected() {
    let mut db = Database::new();
    db.optimize = false; // keep the mkref (rule 28 would cancel it)
    db.execute(
        r#"define type Cell: (v: int4)
           create Cells: { ref Cell }
           append to Cells (v: 1)"#,
    )
    .unwrap();
    // A query that mints a temporary and throws the reference away.
    db.execute("retrieve (deref(mkref((v: 99), Cell)).v)")
        .unwrap();
    assert_eq!(db.store().len(), 2);
    let collected = db.sweep();
    assert_eq!(collected, 1);
    assert_eq!(db.store().len(), 1);
    // The kept object is still queryable.
    assert_eq!(
        db.execute("retrieve (c.v) from c in Cells").unwrap(),
        Value::set([Value::int(1)])
    );
}

#[test]
fn transitively_referenced_objects_survive() {
    let mut db = Database::new();
    db.execute(
        r#"define type Dept: (dname: char[])
           define type Emp: (ename: char[], dept: ref Dept)
           create Emps: { ref Emp }"#,
    )
    .unwrap();
    // Emp references a Dept that is NOT in any top-level set — it is
    // reachable only through the employee.
    db.execute(r#"append to Emps (ename: "a", dept: mkref((dname: "CS"), Dept))"#)
        .unwrap();
    assert_eq!(db.store().len(), 2);
    assert_eq!(db.sweep(), 0, "both objects are reachable");
    // Remove the employee: the department becomes garbage too.
    db.execute(r#"delete from Emps where Emps.ename = "a""#)
        .unwrap();
    assert_eq!(db.sweep(), 2);
    assert_eq!(db.store().len(), 0);
}

#[test]
fn unreachable_cycles_are_collected() {
    let mut db = Database::new();
    db.execute(
        r#"define type Node: (next: ref Node)
           create Keep: { ref Node }"#,
    )
    .unwrap();
    let ty = db.registry().lookup("Node").unwrap();
    // An unreachable 2-cycle…
    let a = db.store_mut().create_unchecked(ty, Value::dne());
    let b = db.store_mut().create_unchecked(ty, Value::dne());
    db.update_stored(a, Value::tuple([("next", Value::Ref(b))]))
        .unwrap();
    db.update_stored(b, Value::tuple([("next", Value::Ref(a))]))
        .unwrap();
    // …and a reachable self-loop.
    let c = db.store_mut().create_unchecked(ty, Value::dne());
    db.update_stored(c, Value::tuple([("next", Value::Ref(c))]))
        .unwrap();
    db.execute("retrieve (Keep)").unwrap(); // no-op sanity
    let keep = Value::set([Value::Ref(c)]);
    db.put_object(
        "Keep",
        excess::types::SchemaType::set(excess::types::SchemaType::reference("Node")),
        keep,
    );
    assert_eq!(
        db.sweep(),
        2,
        "the unreachable cycle goes, the kept loop stays"
    );
    assert!(db.store().contains(c));
    assert!(!db.store().contains(a) && !db.store().contains(b));
}

#[test]
fn sweep_is_idempotent_on_the_university() {
    let mut db = excess::workload::generate(&excess::workload::UniversityParams::tiny())
        .unwrap()
        .db;
    // Everything the generator creates is reachable from the catalog.
    assert_eq!(db.sweep(), 0);
    assert_eq!(db.sweep(), 0);
}
