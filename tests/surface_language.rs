//! End-to-end coverage of the EXCESS surface: every system function, null
//! literals, sub-retrieves, `exact`, labelled targets, and error paths —
//! all through `Database::execute`.

use excess::db::Database;
use excess::types::Value;

fn db_nums() -> Database {
    let mut db = Database::new();
    db.execute(
        r#"retrieve ({ 3, 1, 1, 2 }) into A
           retrieve ({ 2, 4 }) into B
           retrieve ([ 10, 20, 30, 20 ]) into Xs"#,
    )
    .unwrap();
    db
}

#[test]
fn set_operators_in_expressions() {
    let mut db = db_nums();
    for (src, expect) in [
        (
            "retrieve (A uplus B)",
            Value::set([3, 1, 1, 2, 2, 4].map(Value::int)),
        ),
        ("retrieve (A - B)", Value::set([3, 1, 1].map(Value::int))),
        (
            "retrieve (A union B)",
            Value::set([1, 1, 2, 3, 4].map(Value::int)),
        ),
        ("retrieve (A intersect B)", Value::set([2].map(Value::int))),
        ("retrieve (de(A))", Value::set([1, 2, 3].map(Value::int))),
    ] {
        assert_eq!(db.execute(src).unwrap(), expect, "{src}");
    }
    let pairs = db.execute("retrieve (count(A times B))").unwrap();
    assert_eq!(pairs, Value::int(8));
}

#[test]
fn array_functions() {
    let mut db = db_nums();
    assert_eq!(
        db.execute("retrieve (arr_extract(Xs, 2))").unwrap(),
        Value::int(20)
    );
    assert_eq!(
        db.execute("retrieve (arr_extract(Xs, last))").unwrap(),
        Value::int(20)
    );
    assert_eq!(
        db.execute("retrieve (subarr(Xs, 2, 3))").unwrap(),
        Value::array([20, 30].map(Value::int))
    );
    assert_eq!(
        db.execute("retrieve (de(Xs))").unwrap(),
        Value::array([10, 20, 30].map(Value::int))
    );
    assert_eq!(
        db.execute("retrieve (arr_cat(Xs, [ 1 ]))")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        5
    );
    assert_eq!(
        db.execute("retrieve (arr_diff(Xs, [ 20 ]))").unwrap(),
        Value::array([10, 30, 20].map(Value::int))
    );
    assert_eq!(
        db.execute("retrieve (collapse([ [ 1 ], [ 2, 3 ] ]))")
            .unwrap(),
        Value::array([1, 2, 3].map(Value::int))
    );
}

#[test]
fn tuple_functions_and_constructors() {
    let mut db = db_nums();
    assert_eq!(
        db.execute("retrieve (tupcat((a: 1), (b: 2)))").unwrap(),
        Value::tuple([("a", Value::int(1)), ("b", Value::int(2))])
    );
    assert_eq!(
        db.execute("retrieve (project((a: 1, b: 2, c: 3), c, a))")
            .unwrap(),
        Value::tuple([("c", Value::int(3)), ("a", Value::int(1))])
    );
    assert_eq!(db.execute("retrieve (((a: 7)).a)").unwrap(), Value::int(7));
    assert_eq!(
        db.execute("retrieve (())").unwrap(),
        Value::Tuple(excess::types::Tuple::empty())
    );
}

#[test]
fn the_and_aggregates() {
    let mut db = db_nums();
    assert_eq!(db.execute("retrieve (the({ 9 }))").unwrap(), Value::int(9));
    assert!(
        db.execute("retrieve (the({ }))").is_err() || {
            // `{ }` parses as the empty set literal; `the` of it is dne.
            let v = db.execute("retrieve (the({ }))").unwrap();
            v.is_dne()
        }
    );
    assert_eq!(db.execute("retrieve (min(A))").unwrap(), Value::int(1));
    assert_eq!(db.execute("retrieve (max(A))").unwrap(), Value::int(3));
    assert_eq!(db.execute("retrieve (sum(A))").unwrap(), Value::int(7));
    assert_eq!(db.execute("retrieve (avg(B))").unwrap(), Value::float(3.0));
    assert_eq!(db.execute("retrieve (count(Xs))").unwrap(), Value::int(4));
}

#[test]
fn null_literals_flow_through_queries() {
    let mut db = db_nums();
    // dne vanishes from constructed multisets; unk survives.
    assert_eq!(
        db.execute("retrieve (count({ 1, dne, 2 }))").unwrap(),
        Value::int(2)
    );
    assert_eq!(
        db.execute("retrieve (count({ 1, unk }))").unwrap(),
        Value::int(2)
    );
    // Comparisons with unk are unknown: the qualifying element becomes unk.
    let out = db
        .execute("retrieve (x) from x in A where x = unk")
        .unwrap();
    assert_eq!(out.as_set().unwrap().count(&Value::unk()), 4);
}

#[test]
fn sub_retrieves_nest_arbitrarily() {
    let mut db = db_nums();
    let out = db
        .execute(
            "retrieve (y) from y in (retrieve (x + 1) from x in A)
             where y in (retrieve (z) from z in B)",
        )
        .unwrap();
    // A+1 = {4,2,2,3}; keep members of B = {2,4} → {4,2,2}.
    assert_eq!(out, Value::set([4, 2, 2].map(Value::int)));
}

#[test]
fn exact_filters_by_runtime_type() {
    let mut db = Database::new();
    db.execute(
        r#"define type Person: (name: char[])
           define type Employee: (salary: int4) inherits Person
           create P: { Person }
           append to P (name: "p")
           append to P (name: "e", salary: 5)"#,
    )
    .unwrap();
    let only_p = db
        .execute("retrieve (x.name) from x in exact(P, Person)")
        .unwrap();
    assert_eq!(only_p, Value::set([Value::str("p")]));
    let only_e = db
        .execute("retrieve (x.salary) from x in exact(P, Employee)")
        .unwrap();
    assert_eq!(only_e, Value::set([Value::int(5)]));
    let both = db
        .execute("retrieve (x.name) from x in exact(P, Person, Employee)")
        .unwrap();
    assert_eq!(both.as_set().unwrap().len(), 2);
}

#[test]
fn date_and_age_builtins() {
    let mut db = Database::new();
    // today is fixed at 1990-12-01 (the paper's TR date).
    assert_eq!(
        db.execute("retrieve (age(date(1960, 6, 15)))").unwrap(),
        Value::int(30)
    );
    assert!(db.execute("retrieve (date(1990, 13, 1))").is_err());
}

#[test]
fn mkref_and_deref_round_trip() {
    let mut db = Database::new();
    db.execute("define type Cell: (v: int4)").unwrap();
    // With the optimizer OFF, deref(mkref(x)) really mints an object…
    db.optimize = false;
    let out = db
        .execute("retrieve (deref(mkref((v: 5), Cell)).v)")
        .unwrap();
    assert_eq!(out, Value::int(5));
    assert_eq!(db.store().len(), 1);
    // …and with it ON, rule 28 cancels the pair: same value, no mint.
    db.optimize = true;
    let out2 = db
        .execute("retrieve (deref(mkref((v: 5), Cell)).v)")
        .unwrap();
    assert_eq!(out2, Value::int(5));
    assert_eq!(db.store().len(), 1, "rule 28 should have cancelled the REF");
}

#[test]
fn arithmetic_precedence_and_unary_minus() {
    let mut db = db_nums();
    assert_eq!(db.execute("retrieve (2 + 3 * 4)").unwrap(), Value::int(14));
    assert_eq!(
        db.execute("retrieve ((2 + 3) * 4)").unwrap(),
        Value::int(20)
    );
    assert_eq!(db.execute("retrieve (- 5 + 1)").unwrap(), Value::int(-4));
    assert_eq!(db.execute("retrieve (7 / 2)").unwrap(), Value::int(3));
    assert_eq!(db.execute("retrieve (7.0 / 2)").unwrap(), Value::float(3.5));
}

#[test]
fn error_paths_are_reported_not_panicked() {
    let mut db = db_nums();
    for src in [
        "retrieve (1 / 0)",                      // division by zero
        "retrieve (Nope)",                       // unknown object
        "retrieve (the(Xs))",                    // the() over an array
        "retrieve (A uplus Xs)",                 // sort mismatch set/array
        "create A: { int4 }",                    // already exists
        "append to Nope (1)",                    // unknown target
        "retrieve (x) from x in A where x in 3", // `in` needs a multiset
    ] {
        assert!(db.execute(src).is_err(), "{src} should fail");
    }
}

#[test]
fn explain_renders_a_tree_with_estimates() {
    let db = db_nums();
    let plan = db
        .plan_for("retrieve (x + 1) from x in A where x >= 2")
        .unwrap();
    let text = db.explain(&plan);
    assert!(text.contains("SET_APPLY"), "{text}");
    assert!(text.contains("est. cost"), "{text}");
    assert!(text.contains("└─"), "{text}");
}

#[test]
fn top_level_objects_of_any_type() {
    // "support for persistent structures of any type definable in the
    // EXTRA type system" — scalars, tuples, arrays, sets all work as
    // named top-level objects.
    let mut db = Database::new();
    db.execute(
        r#"create Counter: int4
           create Config: (limit: int4, label: char[])
           create Log: array of char[]"#,
    )
    .unwrap();
    assert_eq!(db.execute("retrieve (Counter)").unwrap(), Value::int(0));
    assert_eq!(
        db.execute("retrieve (Config.limit + 1)").unwrap(),
        Value::int(1)
    );
    db.execute(r#"append to Log ("started")"#).unwrap();
    db.execute(r#"append to Log ("stopped")"#).unwrap();
    assert_eq!(
        db.execute("retrieve (arr_extract(Log, last))").unwrap(),
        Value::str("stopped")
    );
    // `retrieve … into` can overwrite a whole object.
    db.execute("retrieve (Counter + 41) into Counter2").unwrap();
    assert_eq!(db.execute("retrieve (Counter2)").unwrap(), Value::int(41));
}
