//! Golden shapes for every JSON surface, checked by round-tripping each
//! document through `excess_core::json::parse_json` and asserting the
//! keys downstream consumers (CI, the report binary, trace viewers)
//! rely on.  These tests pin the *shape*, not the numbers.

use excess::algebra::json::{parse_json, JsonValue};
use excess::db::{exec_report_json, metrics_json, Database};
use excess_bench::example1::{example1_db, figure6};

/// Parse or die with the offending document.
fn parsed(src: &str) -> JsonValue {
    parse_json(src).unwrap_or_else(|e| panic!("invalid JSON ({e}): {src}"))
}

fn obj_keys(v: &JsonValue) -> Vec<&str> {
    v.as_obj()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn metrics_json_shape_includes_warnings() {
    let mut db = Database::new();
    db.set_threads_setting(Some("banana"));
    db.execute("define type Dept: (name: char[], floor: int4)")
        .unwrap();
    db.execute("create Depts: { Dept }").unwrap();
    db.execute("append to Depts (name: \"CS\", floor: 2)")
        .unwrap();
    db.execute("retrieve (D.name) from D in Depts where D.floor = 2")
        .unwrap();
    let v = parsed(&metrics_json(db.metrics()));
    for key in [
        "queries",
        "serial_queries",
        "parallel_queries",
        "workers",
        "eval_ms",
        "counters",
        "optimizations",
        "rewrites_applied",
        "rewrites_refused",
        "plans_enumerated",
        "cost_removed",
        "rules_fired",
        "warnings",
    ] {
        assert!(v.get(key).is_some(), "metrics_json lost key `{key}`");
    }
    assert!(v.get("queries").unwrap().as_f64().unwrap() >= 1.0);
    // The unparsable thread setting surfaced as a warning, not a panic.
    let warnings = v.get("warnings").unwrap().as_arr().unwrap();
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].as_str().unwrap().contains("banana"));
}

#[test]
fn exec_report_json_shape() {
    let mut db = example1_db(64, 48, 8);
    db.set_threads(4);
    db.run_query_plan("F6", &figure6()).unwrap();
    let report = db.last_exec_report().expect("parallel run leaves a report");
    let v = parsed(&exec_report_json(report));
    for key in ["workers", "events", "worker_stats"] {
        assert!(v.get(key).is_some(), "exec_report_json lost key `{key}`");
    }
    assert_eq!(v.get("workers").unwrap().as_f64(), Some(4.0));
    let stats = v.get("worker_stats").unwrap().as_arr().unwrap();
    assert_eq!(stats.len(), 4);
    for w in stats {
        for key in ["worker", "tasks", "occurrences", "busy_ms", "counters"] {
            assert!(w.get(key).is_some(), "worker stat lost key `{key}`");
        }
    }
}

#[test]
fn telemetry_snapshot_shape() {
    let mut db = example1_db(64, 48, 8);
    db.run_query_plan("F6", &figure6()).unwrap();
    let v = parsed(&db.telemetry().snapshot_json());
    assert_eq!(obj_keys(&v), ["registry", "recorder", "feedback"]);

    let reg = v.get("registry").unwrap();
    assert_eq!(obj_keys(reg), ["counters", "gauges", "histograms"]);
    let queries = reg.get("counters").unwrap().get("queries").unwrap();
    assert_eq!(queries.as_f64(), Some(1.0));
    let h = reg.get("histograms").unwrap().get("query_us").unwrap();
    for key in ["count", "sum", "min", "max", "p50", "p95", "p99", "buckets"] {
        assert!(h.get(key).is_some(), "histogram json lost key `{key}`");
    }
    let buckets = h.get("buckets").unwrap().as_arr().unwrap();
    let total: f64 = buckets
        .iter()
        .map(|b| b.get("count").unwrap().as_f64().unwrap())
        .sum();
    assert_eq!(total, h.get("count").unwrap().as_f64().unwrap());

    let rec = v.get("recorder").unwrap();
    let records = rec.get("records").unwrap().as_arr().unwrap();
    assert_eq!(records.len(), 1);
    for key in [
        "query",
        "plan_hash",
        "engine",
        "rows",
        "slow",
        "phases",
        "kernels",
    ] {
        assert!(
            records[0].get(key).is_some(),
            "query record lost key `{key}`"
        );
    }

    assert!(v.get("feedback").unwrap().get("entries").is_some());
}

#[test]
fn query_trace_and_chrome_trace_shapes() {
    let mut db = example1_db(64, 48, 8);
    db.enable_query_spans(true);
    db.run_query_plan("F6", &figure6()).unwrap();
    let trace = db.last_query_trace().unwrap();

    let v = parsed(&trace.to_json());
    for key in ["query", "engine", "plan_hash", "root"] {
        assert!(v.get(key).is_some(), "trace json lost key `{key}`");
    }
    let root = v.get("root").unwrap();
    assert_eq!(root.get("name").unwrap().as_str(), Some("query"));
    assert!(!root.get("children").unwrap().as_arr().unwrap().is_empty());

    // Chrome trace-event format: an array of one metadata event plus one
    // complete ("X") event per span, all on pid 1.
    let events = parsed(&trace.to_chrome_trace());
    let events = events.as_arr().unwrap();
    assert_eq!(events.len(), trace.root.len() + 1);
    let meta = &events[0];
    assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
    for e in &events[1..] {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("pid").unwrap().as_f64(), Some(1.0));
        for key in ["name", "cat", "ts", "dur", "tid"] {
            assert!(e.get(key).is_some(), "trace event lost key `{key}`");
        }
    }
}
