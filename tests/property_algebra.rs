//! Property-based tests (proptest) on the core data structures and the
//! algebra's multiset/array laws, with randomly generated values.

use excess::types::{multiset::naive, MultiSet, Value};
use proptest::prelude::*;

/// Random scalar-ish values (including nested structures two levels deep).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Value::int),
        (-1.0e6f64..1.0e6).prop_map(Value::float),
        "[a-z]{0,6}".prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
        Just(Value::unk()),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::array),
            prop::collection::vec(("[a-c]", inner), 0..3).prop_map(|fs| {
                // Field names must be unique within a tuple.
                let mut seen = std::collections::HashSet::new();
                Value::tuple(
                    fs.into_iter()
                        .filter(|(n, _)| seen.insert(n.clone()))
                        .collect::<Vec<_>>(),
                )
            }),
        ]
    })
}

fn arb_multiset() -> impl Strategy<Value = MultiSet> {
    prop::collection::vec(arb_value(), 0..12).prop_map(MultiSet::from_occurrences)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn value_order_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
        // Transitivity over one triple.
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn additive_union_is_commutative_and_associative(
        a in arb_multiset(), b in arb_multiset(), c in arb_multiset()
    ) {
        prop_assert_eq!(
            a.clone().additive_union(b.clone()),
            b.clone().additive_union(a.clone())
        );
        prop_assert_eq!(
            a.clone().additive_union(b.clone().additive_union(c.clone())),
            a.clone().additive_union(b.clone()).additive_union(c.clone())
        );
    }

    #[test]
    fn union_and_intersection_match_their_derivations(
        a in arb_multiset(), b in arb_multiset()
    ) {
        // A ∪ B = (A − B) ⊎ B and A ∩ B = A − (A − B)   (Appendix §1)
        prop_assert_eq!(
            a.clone().union_max(&b),
            a.clone().difference(&b).additive_union(b.clone())
        );
        prop_assert_eq!(
            a.intersect_min(&b),
            a.clone().difference(&a.clone().difference(&b))
        );
    }

    #[test]
    fn de_is_idempotent_and_bounds_cardinality(a in arb_multiset()) {
        let de = a.dup_elim();
        prop_assert_eq!(de.dup_elim(), de.clone());
        prop_assert_eq!(de.len() as usize, a.distinct_len());
        for (v, c) in de.iter_counted() {
            prop_assert_eq!(c, 1);
            prop_assert!(a.contains(v));
        }
    }

    #[test]
    fn difference_laws(a in arb_multiset(), b in arb_multiset()) {
        // (A − B) ⊎ (A ∩ B) = A
        prop_assert_eq!(
            a.clone().difference(&b).additive_union(a.intersect_min(&b)),
            a.clone()
        );
        // A − A = ∅
        prop_assert!(a.clone().difference(&a).is_empty());
    }

    #[test]
    fn cross_cardinality_multiplies(a in arb_multiset(), b in arb_multiset()) {
        prop_assert_eq!(a.cross(&b).len(), a.len() * b.len());
    }

    #[test]
    fn collapse_preserves_total_occurrences(inner in prop::collection::vec(arb_multiset(), 0..5)) {
        let total: u64 = inner.iter().map(MultiSet::len).sum();
        let outer: MultiSet = inner.into_iter().map(Value::Set).collect();
        // Note: equal inner multisets merge in `outer`, but their
        // cardinalities sum, so collapse still sees every occurrence.
        prop_assert_eq!(outer.collapse().unwrap().len(), total);
    }

    #[test]
    fn naive_kernels_agree_with_count_map(
        a in prop::collection::vec(arb_value(), 0..10),
        b in prop::collection::vec(arb_value(), 0..10)
    ) {
        let ms_a = MultiSet::from_occurrences(a.clone());
        let ms_b = MultiSet::from_occurrences(b.clone());
        // The naive kernels operate on raw occurrence lists which may
        // contain dne; filter as the count map's insertion does.
        let la: Vec<Value> = a.into_iter().filter(|v| !v.is_dne()).collect();
        let lb: Vec<Value> = b.into_iter().filter(|v| !v.is_dne()).collect();
        prop_assert_eq!(
            MultiSet::from_occurrences(naive::additive_union(la.clone(), lb.clone())),
            ms_a.clone().additive_union(ms_b.clone())
        );
        prop_assert_eq!(
            MultiSet::from_occurrences(naive::dup_elim(&la)),
            ms_a.dup_elim()
        );
        prop_assert_eq!(
            MultiSet::from_occurrences(naive::difference(&la, &lb)),
            ms_a.clone().difference(&ms_b)
        );
    }

    #[test]
    fn tuple_cat_is_associative_modulo_priming(
        a in prop::collection::vec(("[a-b]", any::<i32>().prop_map(Value::int)), 0..3),
        b in prop::collection::vec(("[c-d]", any::<i32>().prop_map(Value::int)), 0..3),
        c in prop::collection::vec(("[e-f]", any::<i32>().prop_map(Value::int)), 0..3)
    ) {
        use excess::types::Tuple;
        let dedup = |fs: Vec<(String, Value)>| {
            let mut seen = std::collections::HashSet::new();
            Tuple::from_fields(fs.into_iter().filter(|(n, _)| seen.insert(n.clone())))
        };
        let (ta, tb, tc) = (dedup(a), dedup(b), dedup(c));
        // Disjoint name ranges: no priming, so cat is associative.
        prop_assert_eq!(ta.cat(&tb).cat(&tc), ta.cat(&tb.cat(&tc)));
    }
}

mod array_laws {
    use super::*;
    use excess::algebra::ops::array;
    use excess::algebra::Bound;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn subarr_composition_rule20(
            a in prop::collection::vec(any::<i32>().prop_map(Value::int), 0..12),
            j in 1usize..6, k in 1usize..12, m in 1usize..6, n in 1usize..12
        ) {
            prop_assume!(j <= k && m <= n);
            // SUBARR_{m,n}(SUBARR_{j,k}(A)) = SUBARR_{j+m−1, min(j+n−1,k)}(A)
            let lhs = array::subarr(
                &array::subarr(&a, Bound::At(j), Bound::At(k)),
                Bound::At(m),
                Bound::At(n),
            );
            let rhs = array::subarr(
                &a,
                Bound::At(j + m - 1),
                Bound::At((j + n - 1).min(k)),
            );
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn extract_from_cat_rule17(
            a in prop::collection::vec(any::<i32>().prop_map(Value::int), 0..6),
            b in prop::collection::vec(any::<i32>().prop_map(Value::int), 0..6),
            n in 1usize..12
        ) {
            let cat = array::cat(&a, &b);
            let direct = array::extract(&cat, Bound::At(n));
            let split = if n <= a.len() {
                array::extract(&a, Bound::At(n))
            } else {
                array::extract(&b, Bound::At(n - a.len()))
            };
            prop_assert_eq!(direct, split);
        }

        #[test]
        fn arr_diff_then_cat_identity_when_disjoint(
            a in prop::collection::vec((0i32..100).prop_map(Value::int), 0..8),
            b in prop::collection::vec((100i32..200).prop_map(Value::int), 0..8)
        ) {
            // Disjoint ranges: diff removes nothing.
            prop_assert_eq!(array::diff(&a, &b), a.clone());
            // Removing a itself from a++b leaves b.
            prop_assert_eq!(array::diff(&array::cat(&a, &b), &a), b);
        }

        #[test]
        fn arr_de_preserves_first_positions(
            a in prop::collection::vec((0i32..5).prop_map(Value::int), 0..12)
        ) {
            let de = array::dup_elim(&a);
            // Distinct, order-preserving subsequence of the input.
            let set: std::collections::BTreeSet<_> = de.iter().cloned().collect();
            prop_assert_eq!(set.len(), de.len());
            let mut last_pos = 0usize;
            for v in &de {
                let pos = a.iter().position(|x| x == v).unwrap();
                prop_assert!(pos >= last_pos || last_pos == 0);
                last_pos = pos;
            }
        }
    }
}
