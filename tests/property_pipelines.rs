//! Randomised end-to-end properties over generated multiset pipelines.
//!
//! A pipeline is a random composition of multiset operators over two
//! integer-set objects.  For every generated pipeline we check:
//!
//! 1. **Equipollence** — decompile → parse → translate → evaluate gives
//!    the same value as direct evaluation;
//! 2. **Rewrite soundness** — every one-step optimizer neighbor evaluates
//!    to the same value;
//! 3. **Greedy optimization** — the chosen plan evaluates to the same
//!    value and its estimated cost does not exceed the original's.

use excess::algebra::expr::{CmpOp, Expr, Func, Pred};
use excess::db::Database;
use excess::lang::decompile;
use excess::optimizer::{cost_of, Optimizer, RuleCtx};
use excess::types::{SchemaType, Value};
use proptest::prelude::*;

/// One pipeline stage over a multiset of ints.
#[derive(Debug, Clone)]
enum Stage {
    DupElim,
    SelectGe(i32),
    SelectIn,
    MapAdd(i32),
    MapWrapSet,
    DiffB,
    AddUnionB,
    IntersectB,
    UnionB,
    GroupModAndFlatten(i32),
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::DupElim),
        (-4i32..8).prop_map(Stage::SelectGe),
        Just(Stage::SelectIn),
        (-3i32..4).prop_map(Stage::MapAdd),
        Just(Stage::MapWrapSet),
        Just(Stage::DiffB),
        Just(Stage::AddUnionB),
        Just(Stage::IntersectB),
        Just(Stage::UnionB),
        (1i32..4).prop_map(Stage::GroupModAndFlatten),
    ]
}

/// Compose stages into a plan, tracking whether the current value is a
/// set of ints or a set of sets (so every generated plan is well-sorted).
fn build(stages: &[Stage]) -> Expr {
    let mut e = Expr::named("NumsA");
    let mut nested = false;
    for s in stages {
        match s {
            Stage::DupElim => e = e.dup_elim(),
            Stage::SelectGe(k) if !nested => {
                e = e.select(Pred::cmp(Expr::input(), CmpOp::Ge, Expr::int(*k)));
            }
            Stage::SelectIn if !nested => {
                e = e.select(Pred::cmp(Expr::input(), CmpOp::In, Expr::named("NumsB")));
            }
            Stage::MapAdd(k) if !nested => {
                e = e.set_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(*k)]));
            }
            Stage::MapWrapSet if !nested => {
                e = e.set_apply(Expr::input().make_set());
                nested = true;
            }
            Stage::GroupModAndFlatten(_) if nested => {
                e = e.set_collapse();
                nested = false;
            }
            Stage::GroupModAndFlatten(m) if !nested => {
                // Group by value mod m, then flatten back.
                e = e
                    .group_by(Expr::call(
                        Func::Sub,
                        vec![
                            Expr::input(),
                            Expr::call(
                                Func::Mul,
                                vec![
                                    Expr::call(Func::Div, vec![Expr::input(), Expr::int(*m)]),
                                    Expr::int(*m),
                                ],
                            ),
                        ],
                    ))
                    .set_collapse();
            }
            Stage::DiffB if !nested => e = e.diff(Expr::named("NumsB")),
            Stage::AddUnionB if !nested => e = e.add_union(Expr::named("NumsB")),
            Stage::IntersectB if !nested => {
                e = Expr::Intersect(Box::new(e), Box::new(Expr::named("NumsB")));
            }
            Stage::UnionB if !nested => {
                e = Expr::Union(Box::new(e), Box::new(Expr::named("NumsB")));
            }
            _ => {} // stage invalid in the current sort: skip
        }
    }
    if nested {
        e = e.set_collapse();
    }
    e
}

fn database(a: &[i32], b: &[i32]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "NumsA",
        SchemaType::set(SchemaType::int4()),
        Value::set(a.iter().copied().map(Value::int)),
    );
    db.put_object(
        "NumsB",
        SchemaType::set(SchemaType::int4()),
        Value::set(b.iter().copied().map(Value::int)),
    );
    db.collect_stats();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipelines_round_trip_through_excess(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec(-5i32..10, 0..10),
        b in prop::collection::vec(-5i32..10, 0..8)
    ) {
        let plan = build(&stages);
        let mut db = database(&a, &b);
        let direct = db.run_plan(&plan).unwrap();
        let text = decompile(&plan, db.registry()).unwrap();
        let round = db.execute(&format!("retrieve ({text})")).unwrap();
        prop_assert_eq!(direct, round, "pipeline {} via {}", plan, text);
    }

    #[test]
    fn pipelines_survive_every_one_step_rewrite(
        stages in prop::collection::vec(arb_stage(), 0..5),
        a in prop::collection::vec(-5i32..10, 1..8),
        b in prop::collection::vec(-5i32..10, 1..6)
    ) {
        let plan = build(&stages);
        let mut db = database(&a, &b);
        let base = db.run_plan(&plan).unwrap();
        let opt = Optimizer::standard();
        let ctx = RuleCtx { registry: db.registry(), schemas: db.catalog() };
        let neighbors = opt.neighbors(&plan, &ctx);
        for (rule, alt) in neighbors {
            let out = db.run_plan(&alt).unwrap();
            prop_assert_eq!(
                &base, &out,
                "rule {} changed the result of {} (rewritten: {})", rule, plan, alt
            );
        }
    }

    #[test]
    fn greedy_optimization_preserves_results_and_cost_bound(
        stages in prop::collection::vec(arb_stage(), 0..6),
        a in prop::collection::vec(-5i32..10, 1..8),
        b in prop::collection::vec(-5i32..10, 1..6)
    ) {
        let plan = build(&stages);
        let mut db = database(&a, &b);
        let base = db.run_plan(&plan).unwrap();
        let best = db.optimize_plan(&plan);
        let out = db.run_plan(&best).unwrap();
        prop_assert_eq!(&base, &out, "optimizer broke {} into {}", plan, best);
        // Cost bound against the better of the plan and its desugared form
        // (optimize_plan may start from either).
        let stats = db.statistics();
        let baseline = cost_of(&plan, stats).min(cost_of(&plan.desugar(), stats));
        prop_assert!(cost_of(&best, stats) <= baseline + 1e-6);
    }
}
