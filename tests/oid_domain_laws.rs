//! The five OID-domain rules of Section 3.1, checked as laws over the
//! hierarchy of Figure 1 extended with a multiple-inheritance diamond
//! (`TA inherits Employee, Student`) — the exact scenario rule 5 governs.

use excess::types::domain::{odom_contains, partition_cell_contains};
use excess::types::{OidAllocator, SchemaType, TypeRegistry};

fn hierarchy() -> (TypeRegistry, [excess::types::TypeId; 5]) {
    let mut r = TypeRegistry::new();
    let person = r
        .define("Person", SchemaType::tuple([("name", SchemaType::chars())]))
        .unwrap();
    let employee = r
        .define_with_supertypes(
            "Employee",
            SchemaType::tuple([("salary", SchemaType::int4())]),
            &["Person"],
        )
        .unwrap();
    let student = r
        .define_with_supertypes(
            "Student",
            SchemaType::tuple([("gpa", SchemaType::float4())]),
            &["Person"],
        )
        .unwrap();
    let ta = r
        .define_with_supertypes(
            "TA",
            SchemaType::tuple::<_, String>([]),
            &["Employee", "Student"],
        )
        .unwrap();
    let dept = r
        .define(
            "Department",
            SchemaType::tuple([("dname", SchemaType::chars())]),
        )
        .unwrap();
    (r, [person, employee, student, ta, dept])
}

#[test]
fn rule1_domains_are_inexhaustible() {
    // |Odom(t)| = ∞ for every t — realised as a 2^64 serial space; minting
    // many OIDs never collides.
    let (_, [person, ..]) = hierarchy();
    let mut alloc = OidAllocator::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..10_000 {
        assert!(seen.insert(alloc.mint(person)));
    }
}

#[test]
fn rule2_residue_after_subtypes_is_infinite() {
    // |Odom(Person) − (Odom(Employee) ∪ Odom(Student) ∪ Odom(TA))| = ∞:
    // OIDs minted *for Person itself* belong to no subtype's domain.
    let (r, [person, employee, student, ta, _]) = hierarchy();
    let mut alloc = OidAllocator::new();
    for _ in 0..1_000 {
        let o = alloc.mint(person);
        assert!(odom_contains(&r, person, o));
        for sub in [employee, student, ta] {
            assert!(!odom_contains(&r, sub, o));
        }
    }
}

#[test]
fn rule3_subtype_oids_flow_upward() {
    // R → S ⇒ Odom(S) ⊆ Odom(R): every Employee OID is a Person OID.
    let (r, [person, employee, _, ta, _]) = hierarchy();
    let mut alloc = OidAllocator::new();
    for _ in 0..100 {
        let e = alloc.mint(employee);
        assert!(odom_contains(&r, person, e));
        let t = alloc.mint(ta);
        assert!(odom_contains(&r, employee, t));
        assert!(odom_contains(&r, person, t)); // transitively
    }
}

#[test]
fn rule4_unrelated_types_share_no_oids() {
    // No shared descendants ⇒ disjoint domains: Department vs Person-tree.
    let (r, [person, employee, student, ta, dept]) = hierarchy();
    assert!(!r.shares_descendant(dept, person));
    let mut alloc = OidAllocator::new();
    for ty in [person, employee, student, ta] {
        let o = alloc.mint(ty);
        assert!(!odom_contains(&r, dept, o));
        let d = alloc.mint(dept);
        assert!(!odom_contains(&r, ty, d));
    }
    // Employee and Student DO share a descendant (TA), so rule 4 does not
    // force disjointness: the TA OIDs are in both.
    assert!(r.shares_descendant(employee, student));
    let t = alloc.mint(ta);
    assert!(odom_contains(&r, employee, t) && odom_contains(&r, student, t));
}

#[test]
fn rule5_multiple_inheritance_intersection() {
    // A → B with A = {Employee, Student}, B = {TA}:
    // ⋃ Odom(Bj) ⊆ ⋂ Odom(Ai).
    let (r, [_, employee, student, ta, _]) = hierarchy();
    let mut alloc = OidAllocator::new();
    for _ in 0..100 {
        let o = alloc.mint(ta);
        assert!(
            odom_contains(&r, employee, o) && odom_contains(&r, student, o),
            "TA OIDs must live in the intersection of the supertypes' domains"
        );
    }
    // The intersection is not exhausted by B: an OID minted for Employee
    // alone is in Odom(Employee) but not Odom(Student).
    let e = alloc.mint(employee);
    assert!(odom_contains(&r, employee, e) && !odom_contains(&r, student, e));
}

#[test]
fn strict_partition_vs_amended_definition() {
    // dom (strict R(n) cells) vs DOM (definition v'): the strict cell for
    // Person contains only Person-minted OIDs.
    let (r, [person, employee, ..]) = hierarchy();
    let mut alloc = OidAllocator::new();
    let p = alloc.mint(person);
    let e = alloc.mint(employee);
    assert!(partition_cell_contains(person, p));
    assert!(!partition_cell_contains(person, e));
    // …while the amended domain admits the subtype's OIDs.
    assert!(odom_contains(&r, person, e));
}

#[test]
fn type_migration_stays_inside_the_minting_partition() {
    // "these semantics allow type migration to occur" — an object minted
    // as Person may become a Student (or TA, transitively) and back, but a
    // Student-minted object cannot become a plain Person.
    let (r, [person, _, student, _, _]) = hierarchy();
    let mut store = excess::types::ObjectStore::new();
    let v_person = excess::types::Value::tuple([("name", excess::types::Value::str("A"))]);
    let v_student = excess::types::Value::tuple([
        ("name", excess::types::Value::str("A")),
        ("gpa", excess::types::Value::float(3.0)),
    ]);
    let oid = store.create(&r, person, v_person.clone()).unwrap();
    store.migrate(&r, oid, student, v_student.clone()).unwrap();
    assert_eq!(store.exact_type(oid).unwrap(), student);
    // References typed `ref Person` remain valid: oid ∈ Odom(Person).
    assert!(odom_contains(&r, person, oid));
    // Reverse direction from a Student-minted identity is rejected.
    let s_oid = store.create(&r, student, v_student).unwrap();
    assert!(store.migrate(&r, s_oid, person, v_person).is_err());
}
