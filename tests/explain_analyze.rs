//! EXPLAIN ANALYZE acceptance tests: the Figure 8 pair's per-node
//! attribution, the optimizer's rewrite journal, and the machine-readable
//! serializers, end to end through `Database`.

use excess::db::{journal_json, metrics_json, profile_json, Database};
use excess::optimizer::{Optimizer, RuleCtx};
use excess_bench::example1::{example1_db, figure6, figure7, figure8};

/// |S| and |E| for the Figure 8 pair; the duplication factor is set to
/// max(|S|,|E|) so every employee shares one name and the Figure 7 join
/// output is exactly |S|·|E|.
const S: usize = 40;
const E: usize = 24;

fn fixture() -> Database {
    example1_db(S, E, S.max(E))
}

#[test]
fn figure7_de_node_sees_s_times_e_occurrences() {
    let mut db = fixture();
    let (_, profile) = db.run_plan_profiled(&figure7()).unwrap();
    let de: Vec<_> = profile.nodes.iter().filter(|n| n.label == "DE").collect();
    assert_eq!(de.len(), 1, "figure 7 has a single DE node");
    assert_eq!(
        de[0].self_counters.de_input_occurrences,
        (S * E) as u64,
        "the DE node itself is charged |S|·|E| input occurrences"
    );
    // The attribution is local: no other node is charged DE input.
    assert_eq!(profile.total.de_input_occurrences, (S * E) as u64);
}

#[test]
fn figure8_side_de_nodes_see_s_plus_e_occurrences() {
    let mut db = fixture();
    let (_, profile) = db.run_plan_profiled(&figure8()).unwrap();
    // The input-side DEs sit below the join (path length > 2); the
    // post-join DE at [0,0] sees only already-deduplicated occurrences.
    let side: Vec<_> = profile
        .nodes
        .iter()
        .filter(|n| n.label == "DE" && n.path.len() > 2)
        .collect();
    assert_eq!(side.len(), 2, "figure 8 pushes a DE into each join input");
    let total: u64 = side
        .iter()
        .map(|n| n.self_counters.de_input_occurrences)
        .sum();
    assert_eq!(total, (S + E) as u64, "side DEs see |S|+|E| between them");
    assert!(
        profile.total.de_input_occurrences < ((S * E) / 2) as u64,
        "nowhere near the |S|·|E| of figure 7"
    );
}

#[test]
fn explain_analyze_renders_the_attribution() {
    let mut db = fixture();
    // Per-node attribution is a property of the serial profiler: under a
    // parallel config the engine profiles partition-local fragments whose
    // paths only approximately align with the plan tree (the parallel
    // rendering has its own tests in tests/parallel_equivalence.rs).
    db.set_threads(1);
    let text = db.explain_analyze(&figure7()).unwrap();
    // The DE line carries its own de_in attribution and an estimate.
    let de_line = text
        .lines()
        .find(|l| l.contains("DE ") || l.trim_start().starts_with("DE"))
        .unwrap_or_else(|| panic!("no DE line in:\n{text}"));
    assert!(de_line.contains(&format!("de_in={}", S * E)), "{text}");
    assert!(de_line.contains("est rows="), "{text}");
    assert!(
        text.contains("%)"),
        "every node line shows its share:\n{text}"
    );
    assert!(text.lines().last().unwrap().starts_with("total:"), "{text}");
}

#[test]
fn journal_names_the_de_early_rule_sequence() {
    let db = fixture();
    let opt = Optimizer::standard();
    let rctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    // The sugared Figure 6 tree as the parser would emit it — no
    // desugaring hint; the statistics collected from the store are what
    // let the cost model credit the DE pushes.
    let (best, journal) = opt.optimize_greedy_journaled(&figure6(), &rctx, db.statistics());
    assert!(
        journal.rule_sequence().contains(&"rel5-de-early"),
        "journal should name the DE-pushing rule, got {:?}",
        journal.rule_sequence()
    );
    assert!(journal.final_cost < journal.initial_cost);
    assert_eq!(journal.final_cost, best.cost);
    // Each step records where it fired and a strictly improving cost.
    for step in &journal.steps {
        assert!(step.cost_after < step.cost_before);
    }
    // The journal serializes with the rule names intact.
    let json = journal_json(&journal);
    assert!(json.contains("\"rel5-de-early\""), "{json}");
    assert!(json.contains("\"cost_before\""), "{json}");
}

#[test]
fn profile_and_metrics_serialize_to_json() {
    let mut db = fixture();
    let (_, profile) = db.run_plan_profiled(&figure7()).unwrap();
    let json = profile_json(&profile);
    assert!(json.contains("\"op\":\"DE\""), "{json}");
    assert!(
        json.contains(&format!("\"de_input_occurrences\":{}", S * E)),
        "{json}"
    );

    let mjson = metrics_json(db.metrics());
    assert!(mjson.contains("\"queries\":1"), "{mjson}");
    // Metrics accumulated the profiled run's counters.
    assert_eq!(db.metrics().counters, db.last_counters());
}

#[test]
fn session_metrics_accumulate_across_queries_and_optimizations() {
    let mut db = fixture();
    db.run_plan(&figure7()).unwrap();
    let after_one = db.metrics().counters;
    db.run_plan(&figure8()).unwrap();
    assert_eq!(db.metrics().queries, 2);
    assert!(db.metrics().counters.total() > after_one.total());

    let plan = figure6();
    let (_, journal) = db.optimize_plan_journaled(&plan);
    assert_eq!(db.metrics().optimizations, 1);
    assert_eq!(db.metrics().rewrites_applied, journal.steps.len() as u64);
    for rule in journal.rule_sequence() {
        assert!(db.metrics().rules_fired.contains_key(rule));
    }

    db.reset_metrics();
    assert_eq!(db.metrics().queries, 0);
    assert!(db.metrics().rules_fired.is_empty());
}
