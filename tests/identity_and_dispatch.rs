//! Object identity end-to-end: sharing, cycles, type migration changing
//! dispatch outcomes, and exhaustive optimizer search over dispatch plans.

use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::db::Database;
use excess::optimizer::{Optimizer, RuleCtx};
use excess::types::{SchemaType, Value};

fn hierarchy_db() -> Database {
    let mut db = Database::new();
    db.execute(
        r#"define type Person: (name: char[])
           define type Employee: (salary: int4) inherits Person"#,
    )
    .unwrap();
    db
}

#[test]
fn shared_subobjects_observe_updates() {
    // "Such objects can be referenced by their identity from anywhere in
    // the database" (Section 2): two sets share one object; an update
    // through either is seen through both.
    let mut db = Database::new();
    db.execute(
        r#"define type Dept: (dname: char[], floor: int4)
           define type Emp: (ename: char[], dept: ref Dept)
           create Depts: { ref Dept }
           create Emps: { ref Emp }
           append to Depts (dname: "CS", floor: 2)"#,
    )
    .unwrap();
    // Both employees reference the SAME department object.
    db.execute(
        r#"append to Emps (ename: "a",
             dept: the((retrieve (d) from d in Depts where d.dname = "CS")))
           append to Emps (ename: "b",
             dept: the((retrieve (d) from d in Depts where d.dname = "CS")))"#,
    )
    .unwrap();
    db.execute("replace Depts (floor: 9)").unwrap();
    let floors = db
        .execute("retrieve (E.dept.floor) from E in Emps")
        .unwrap();
    assert_eq!(floors, Value::set([Value::int(9), Value::int(9)]));
    // And it is identity, not value copies: exactly one Dept object exists.
    assert_eq!(db.store().len(), 3); // 1 dept + 2 emps
}

#[test]
fn cyclic_object_graphs_queryable() {
    // manager cycles (a manages b manages a): navigation terminates
    // because queries walk finite paths, and canonical forms handle the
    // cycle when comparing.
    let mut db = Database::new();
    db.execute(
        r#"define type E2: (n: char[], mgr: ref E2)
           create Es: { ref E2 }"#,
    )
    .unwrap();
    let ty = db.registry().lookup("E2").unwrap();
    let a = db.store_mut().create_unchecked(ty, Value::dne());
    let b = db.store_mut().create_unchecked(ty, Value::dne());
    db.update_stored(
        a,
        Value::tuple([("n", Value::str("a")), ("mgr", Value::Ref(b))]),
    )
    .unwrap();
    db.update_stored(
        b,
        Value::tuple([("n", Value::str("b")), ("mgr", Value::Ref(a))]),
    )
    .unwrap();
    db.put_object(
        "Es",
        SchemaType::set(SchemaType::reference("E2")),
        Value::set([Value::Ref(a), Value::Ref(b)]),
    );
    let out = db.execute("retrieve (x.mgr.mgr.n) from x in Es").unwrap();
    assert_eq!(out, Value::set([Value::str("a"), Value::str("b")]));
}

#[test]
fn type_migration_changes_dispatch() {
    // An object migrates Person → Employee; the same switch plan then
    // routes it through the Employee arm.  Identity (and all references)
    // survive the migration.
    let mut db = hierarchy_db();
    let person_ty = db.registry().lookup("Person").unwrap();
    let employee_ty = db.registry().lookup("Employee").unwrap();
    let reg0 = db.registry().clone();
    let oid = db
        .store_mut()
        .create(
            &reg0,
            person_ty,
            Value::tuple([("name", Value::str("Ann"))]),
        )
        .unwrap();
    db.put_object(
        "Ppl",
        SchemaType::set(SchemaType::reference("Person")),
        Value::set([Value::Ref(oid)]),
    );
    let plan = Expr::SetApplySwitch {
        input: Box::new(Expr::named("Ppl")),
        table: vec![
            ("Person".into(), Expr::str("person-arm")),
            ("Employee".into(), Expr::str("employee-arm")),
        ],
    };
    assert_eq!(
        db.run_plan(&plan).unwrap(),
        Value::set([Value::str("person-arm")])
    );
    // Promote Ann.
    let ann = Value::tuple([("name", Value::str("Ann")), ("salary", Value::int(1))]);
    let reg = db.registry().clone();
    db.store_mut().migrate(&reg, oid, employee_ty, ann).unwrap();
    assert_eq!(
        db.run_plan(&plan).unwrap(),
        Value::set([Value::str("employee-arm")])
    );
    // The exact-type filter agrees.
    let only_emp = Expr::named("Ppl").set_apply_only(["Employee"], Expr::input());
    assert_eq!(db.run_plan(&only_emp).unwrap().as_set().unwrap().len(), 1);
}

#[test]
fn exhaustive_search_finds_cheaper_or_equal_dispatch_plans() {
    // The exhaustive engine explores switch ↔ ⊎ forms; its winner must be
    // at most the seed's cost and evaluate identically.
    let mut db = hierarchy_db();
    db.put_object(
        "P",
        SchemaType::set(SchemaType::named("Person")),
        Value::set((0..12).map(|i| {
            if i % 2 == 0 {
                Value::tuple([("name", Value::str(format!("p{i}")))])
            } else {
                Value::tuple([
                    ("name", Value::str(format!("e{i}"))),
                    ("salary", Value::int(i)),
                ])
            }
        })),
    );
    db.collect_stats();
    let seed = Expr::SetApplySwitch {
        input: Box::new(Expr::named("P")),
        table: vec![
            ("Person".into(), Expr::input().extract("name")),
            ("Employee".into(), Expr::input().extract("salary")),
        ],
    };
    let mut opt = Optimizer::standard();
    opt.max_plans = 64;
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let best = opt.optimize(&seed, &ctx, db.statistics());
    assert!(best.cost <= excess::optimizer::cost_of(&seed, db.statistics()));
    let a = db.run_plan(&seed).unwrap();
    let b = db.run_plan(&best.plan).unwrap();
    assert_eq!(a, b);
    assert!(best.explored > 1, "search must have explored alternatives");
}

#[test]
fn dangling_reference_surfaces_as_error_not_corruption() {
    let mut db = Database::new();
    db.execute(
        r#"define type Cell: (v: int4)
           create Cells: { ref Cell }
           append to Cells (v: 7)"#,
    )
    .unwrap();
    let oid = db
        .catalog()
        .value("Cells")
        .unwrap()
        .as_set()
        .unwrap()
        .iter_occurrences()
        .next()
        .unwrap()
        .as_ref_oid()
        .unwrap();
    db.store_mut().delete(oid).unwrap();
    let err = db.execute("retrieve (c.v) from c in Cells").unwrap_err();
    assert!(err.to_string().contains("dangling"), "{err}");
}

#[test]
fn ref_equality_is_identity_not_value() {
    // Two distinct objects with equal values: `=` on the refs is false,
    // `=` on the dereferenced values is true — the paper's one-equality
    // design (OIDs are just values, and distinct OIDs are unequal).
    let mut db = Database::new();
    db.execute(
        r#"define type Cell: (v: int4)
           create Cells: { ref Cell }
           append to Cells (v: 7)
           append to Cells (v: 7)"#,
    )
    .unwrap();
    let pairs = Expr::named("Cells").cross(Expr::named("Cells"));
    let same_ref = pairs.clone().select(Pred::cmp(
        Expr::input().extract("fst"),
        CmpOp::Eq,
        Expr::input().extract("snd"),
    ));
    let same_val = pairs.select(Pred::cmp(
        Expr::input().extract("fst").deref(),
        CmpOp::Eq,
        Expr::input().extract("snd").deref(),
    ));
    let by_ref = db.run_plan(&same_ref).unwrap();
    let by_val = db.run_plan(&same_val).unwrap();
    assert_eq!(by_ref.as_set().unwrap().len(), 2); // only (x,x) and (y,y)
    assert_eq!(by_val.as_set().unwrap().len(), 4); // all four pairs
}
