//! Profiling and session metrics under the partition-parallel engine.
//!
//! The profiler's telescope invariant — the sum of every node's *self*
//! counters equals the query totals — must survive the engine's
//! fragment-plan merging, in both precise and coarse tracing modes.  The
//! session metrics must record the serial/parallel query split and the
//! worker count, and the parallel path must be reachable through the
//! surface language (`Database::execute`).

mod common;

use excess::algebra::expr::Expr;
use excess::db::metrics_json;

fn profiled_plans() -> Vec<Expr> {
    let s = || Expr::named("S");
    vec![
        // Chunked selection.
        s().select(common::grp_pred()),
        // GRP exchange + hash DE.
        s().group_by(Expr::input().extract("grp")).dup_elim(),
        // Pipeline: map, union, dedup.
        s().set_apply(Expr::input().extract("name"))
            .add_union(Expr::named("T").set_apply(Expr::input().extract("name")))
            .dup_elim(),
    ]
}

#[test]
fn precise_profiles_telescope_to_query_totals() {
    for plan in profiled_plans() {
        let mut db = common::database();
        db.set_threads(3);
        let (_, profile) = db.run_plan_parallel_profiled(&plan).unwrap();
        assert_eq!(
            profile.sum_of_self_counters(),
            db.last_counters(),
            "precise profile of {plan} does not telescope"
        );
        assert_eq!(profile.total, db.last_counters());
    }
}

#[test]
fn coarse_profiles_telescope_to_query_totals() {
    // Coarse mode halves the clock reads; counters must stay exact.
    for plan in profiled_plans() {
        let mut db = common::database();
        db.set_threads(3);
        let (_, profile) = db.run_plan_parallel_profiled_coarse(&plan).unwrap();
        assert_eq!(
            profile.sum_of_self_counters(),
            db.last_counters(),
            "coarse profile of {plan} does not telescope"
        );
    }
}

#[test]
fn parallel_profiled_counters_match_serial_profiled() {
    for plan in profiled_plans() {
        let mut serial_db = common::database();
        let (serial_value, _) = serial_db.run_plan_profiled(&plan).unwrap();

        let mut db = common::database();
        db.set_threads(3);
        let (value, _) = db.run_plan_parallel_profiled(&plan).unwrap();
        assert_eq!(serial_value, value, "{plan}");
        assert_eq!(
            serial_db.last_counters(),
            db.last_counters(),
            "profiling must not change the work accounting of {plan}"
        );
    }
}

#[test]
fn session_metrics_split_serial_and_parallel_queries() {
    let mut db = common::database();
    let plan = Expr::named("S").select(common::grp_pred());

    db.run_plan(&plan).unwrap();
    db.set_threads(4);
    db.run_plan_parallel(&plan).unwrap();
    db.run_plan_parallel(&plan).unwrap();

    let m = db.metrics();
    assert_eq!(m.queries, 3);
    assert_eq!(m.serial_queries, 1);
    assert_eq!(m.parallel_queries, 2);
    assert_eq!(m.workers, 4);
    let text = m.to_string();
    assert!(
        text.contains("execution: 1 serial, 2 parallel (4 workers)"),
        "{text}"
    );
    let json = metrics_json(m);
    assert!(json.contains("\"parallel_queries\":2"), "{json}");
    assert!(json.contains("\"workers\":4"), "{json}");
}

#[test]
fn whole_plan_fallbacks_are_recorded_as_serial_queries() {
    // A plan the engine refuses to partition (it mints OIDs) runs — and
    // is accounted — serially even under a parallel config.
    let mut db = common::database();
    db.set_threads(4);
    let plan = Expr::named("OneTup").make_ref("Person2Cell").deref();
    db.run_plan_parallel(&plan).unwrap();
    assert_eq!(db.metrics().parallel_queries, 0);
    assert_eq!(db.metrics().serial_queries, 1);
}

#[test]
fn execute_routes_retrieves_through_the_parallel_engine() {
    let mut db = common::database();
    db.set_threads(3);
    let out = db
        .execute("retrieve (P.name) from P in S where P.grp = 1")
        .unwrap();
    assert!(out.to_string().contains('n'), "{out}");
    assert_eq!(db.metrics().parallel_queries, 1);
    let report = db.last_exec_report().expect("retrieve journals execution");
    assert_eq!(report.workers, 3);
    assert!(report.parallel_nodes() > 0, "events: {:?}", report.events);

    // Updates stay serial: only retrieves route through the engine.
    db.execute("append to S (name: \"n9\", grp: 9)").unwrap();
    assert_eq!(db.metrics().parallel_queries, 1);
}
