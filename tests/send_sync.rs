//! Compile-time thread-safety audit: the session/server layer shares
//! database state across threads, so the core state types must be
//! `Send + Sync`.  These assertions fail to *build* if a non-`Send`
//! field (an `Rc`, a `RefCell`, a raw pointer) sneaks into any of them.

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_state_is_send_and_sync() {
    assert_send_sync::<excess::types::TypeRegistry>();
    assert_send_sync::<excess::types::ObjectStore>();
    assert_send_sync::<excess::types::Value>();
    assert_send_sync::<excess::db::DbCatalog>();
    assert_send_sync::<excess::db::Database>();
    assert_send_sync::<excess::db::SessionMetrics>();
    assert_send_sync::<excess::telemetry::Telemetry>();
    assert_send_sync::<excess::optimizer::Statistics>();
    assert_send_sync::<excess::lang::methods::MethodRegistry>();
    assert_send_sync::<excess::exec::ExecConfig>();
}

#[test]
fn session_and_server_layer_is_send_and_sync() {
    assert_send_sync::<excess::db::Generation>();
    assert_send_sync::<excess::db::VersionedDb>();
    assert_send_sync::<excess::db::Session>();
    assert_send_sync::<excess::db::session::CommitBatch>();
    assert_send_sync::<excess::server::ServerHandle>();
}

#[test]
fn multi_statement_single_line_parses() {
    let stmts =
        excess::lang::parse_program("range of S is S1 retrieve unique (S.sdept) by S.sdept")
            .unwrap();
    assert_eq!(stmts.len(), 2);
}
