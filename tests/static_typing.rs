//! Static schema inference over whole query plans — the algebra's closure
//! property, exposed as `Database::infer_schema`.

use excess::types::SchemaType;
use excess::workload::{generate, generate_documents, DocumentParams, UniversityParams};

#[test]
fn paper_queries_infer_sensible_schemas() {
    let db = generate(&UniversityParams::tiny()).unwrap().db;
    // Figure 3: a 2-field tuple.
    let p3 = db.plan_for(excess::workload::queries::FIGURE3).unwrap();
    assert_eq!(
        db.infer_schema(&p3).unwrap(),
        SchemaType::tuple([
            ("name", SchemaType::chars()),
            ("salary", SchemaType::int4())
        ])
    );
    // Figure 4: a multiset of names.
    let p4 = db.plan_for(excess::workload::queries::FIGURE4).unwrap();
    assert_eq!(
        db.infer_schema(&p4).unwrap(),
        SchemaType::set(SchemaType::chars())
    );
}

#[test]
fn grouped_queries_infer_nested_sets() {
    let db = generate(&UniversityParams::tiny()).unwrap().db;
    let plan = db
        .plan_for("retrieve (S.name) by S.gpa from S in Students")
        .unwrap();
    assert_eq!(
        db.infer_schema(&plan).unwrap(),
        SchemaType::set(SchemaType::set(SchemaType::chars()))
    );
}

#[test]
fn document_paths_infer_ordered_arrays() {
    let ds = generate_documents(&DocumentParams::default()).unwrap();
    let plan = ds
        .db
        .plan_for("retrieve (the(Docs).sections.title)")
        .unwrap();
    assert_eq!(
        ds.db.infer_schema(&plan).unwrap(),
        SchemaType::array(SchemaType::chars())
    );
}

#[test]
fn inferred_schema_admits_the_actual_result() {
    // For a battery of queries: infer first, evaluate second, and check
    // the result inhabits the inferred DOM — inference is sound.
    let mut db = generate(&UniversityParams::tiny()).unwrap().db;
    for src in [
        "retrieve (E.name, E.salary) from E in Employees",
        "retrieve (count(Employees))",
        "retrieve (TopTen[2])",
        "retrieve (D.employees) from D in Departments",
        "retrieve unique (S.gpa) from S in Students",
    ] {
        let plan = db.plan_for(src).unwrap();
        let schema = db.infer_schema(&plan).unwrap();
        let value = db.run_plan(&plan).unwrap();
        excess::types::domain::check_dom(&value, &schema, db.registry())
            .unwrap_or_else(|e| panic!("{src}: result ∉ inferred {schema}: {e}"));
    }
}

#[test]
fn optimizer_preserves_inferred_schemas() {
    // Rewrites must not change a plan's output schema (up to Named
    // resolution) — checked on the Figure 4 plan.
    let db = generate(&UniversityParams::tiny()).unwrap().db;
    let plan = db.plan_for(excess::workload::queries::FIGURE4).unwrap();
    let optimized = db.optimize_plan(&plan);
    assert_eq!(
        db.infer_schema(&plan).unwrap(),
        db.infer_schema(&optimized).unwrap()
    );
}
