//! Section 3.4's expressiveness remarks, made concrete.
//!
//! * "it is capable of simulating most of the algebras mentioned in
//!   Section 1" — we simulate the five relational-algebra primitives
//!   (σ, π, ×, ∪, −) over flat relations and check them against
//!   hand-computed answers;
//! * nested-relational restructuring (nest/unnest) is expressible with
//!   GRP and SET_COLLAPSE;
//! * the SET_APPLY loop is *iteration over a set*, not an unbounded
//!   while-loop: evaluation cost is linear in the data, and the output of
//!   one application step is finite — the flavour of the paper's
//!   conjecture that powerset (and hence fixpoints) are out of reach.

use excess::algebra::expr::{CmpOp, Expr, Func, Pred};
use excess::db::Database;
use excess::types::{SchemaType, Value};

fn relation(name_vals: &[(i32, &str)]) -> Value {
    Value::set(
        name_vals
            .iter()
            .map(|(a, b)| Value::tuple([("a", Value::int(*a)), ("b", Value::str(*b))])),
    )
}

fn db_with(rels: &[(&str, Value)]) -> Database {
    let mut db = Database::new();
    db.optimize = false;
    let schema = SchemaType::set(SchemaType::tuple([
        ("a", SchemaType::int4()),
        ("b", SchemaType::chars()),
    ]));
    for (n, v) in rels {
        db.put_object(n, schema.clone(), v.clone());
    }
    db
}

#[test]
fn relational_select() {
    let mut db = db_with(&[("R", relation(&[(1, "x"), (2, "y"), (3, "x")]))]);
    // σ_{b = "x"}(R) via SET_APPLY ∘ COMP (the derivation in Appendix §1).
    let plan = Expr::named("R").set_apply(Expr::input().comp(Pred::cmp(
        Expr::input().extract("b"),
        CmpOp::Eq,
        Expr::str("x"),
    )));
    let out = db.run_plan(&plan).unwrap();
    assert_eq!(out, relation(&[(1, "x"), (3, "x")]));
}

#[test]
fn relational_project_with_duplicate_semantics() {
    let mut db = db_with(&[("R", relation(&[(1, "x"), (2, "x"), (3, "y")]))]);
    // Bag projection keeps duplicates; DE gives the set-semantics variant.
    let bag = Expr::named("R").set_apply(Expr::input().project(["b"]));
    let out = db.run_plan(&bag).unwrap();
    assert_eq!(out.as_set().unwrap().len(), 3);
    assert_eq!(out.as_set().unwrap().distinct_len(), 2);
    let set = db.run_plan(&bag.dup_elim()).unwrap();
    assert_eq!(set.as_set().unwrap().len(), 2);
}

#[test]
fn relational_cross_union_difference() {
    let r = relation(&[(1, "x"), (2, "y")]);
    let s = relation(&[(2, "y"), (3, "z")]);
    let mut db = db_with(&[("R", r), ("S", s)]);
    // rel_× flattens into concatenated tuples (names primed).
    let cross = db
        .run_plan(&Expr::named("R").rel_cross(Expr::named("S")))
        .unwrap();
    assert_eq!(cross.as_set().unwrap().len(), 4);
    let first = cross
        .as_set()
        .unwrap()
        .iter_occurrences()
        .next()
        .unwrap()
        .clone();
    let names: Vec<_> = first.as_tuple().unwrap().field_names().collect();
    assert_eq!(names, vec!["a", "b", "a'", "b'"]);
    // ∪ and − with set semantics = DE'd multiset ops.
    let union = db
        .run_plan(&Expr::named("R").add_union(Expr::named("S")).dup_elim())
        .unwrap();
    assert_eq!(union.as_set().unwrap().len(), 3);
    let diff = db
        .run_plan(&Expr::named("R").diff(Expr::named("S")))
        .unwrap();
    assert_eq!(diff, relation(&[(1, "x")]));
}

#[test]
fn relational_theta_join() {
    let mut db = db_with(&[
        ("R", relation(&[(1, "x"), (2, "y")])),
        ("S", relation(&[(2, "q"), (2, "r"), (9, "z")])),
    ]);
    let join = Expr::named("R").rel_join(
        Expr::named("S"),
        Pred::cmp(
            Expr::input().extract("a"),
            CmpOp::Eq,
            Expr::input().extract("a'"),
        ),
    );
    let out = db.run_plan(&join).unwrap();
    // (2,y) matches both S-rows with a=2.
    assert_eq!(out.as_set().unwrap().len(), 2);
}

#[test]
fn nested_relational_nest_and_unnest() {
    // NEST: group R by `a`, wrapping each group's `b`s — GRP + SET_APPLY.
    let mut db = db_with(&[("R", relation(&[(1, "x"), (1, "y"), (2, "z")]))]);
    let nest = Expr::named("R")
        .group_by(Expr::input().extract("a"))
        .set_apply(Expr::input().set_apply(Expr::input().extract("b")));
    let nested = db.run_plan(&nest).unwrap();
    assert_eq!(
        nested,
        Value::set([
            Value::set([Value::str("x"), Value::str("y")]),
            Value::set([Value::str("z")]),
        ])
    );
    // UNNEST: SET_COLLAPSE flattens back to the multiset of b's.
    let unnest = nest.set_collapse();
    let flat = db.run_plan(&unnest).unwrap();
    assert_eq!(
        flat,
        Value::set([Value::str("x"), Value::str("y"), Value::str("z")])
    );
}

#[test]
fn set_apply_is_iteration_not_while() {
    // A SET_APPLY pipeline of depth k applies its body exactly
    // |input| times per level — there is no data-dependent repetition.
    // Composing k SET_APPLYs costs Θ(k·n), witnessed by the scan counter.
    let n = 100;
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "N",
        SchemaType::set(SchemaType::int4()),
        Value::set((0..n).map(Value::int)),
    );
    let mut plan = Expr::named("N");
    let k = 7;
    for _ in 0..k {
        plan = plan.set_apply(Expr::call(Func::Add, vec![Expr::input(), Expr::int(1)]));
    }
    db.run_plan(&plan).unwrap();
    assert_eq!(
        db.last_counters().occurrences_scanned,
        (k as u64) * n as u64
    );
}

#[test]
fn powerset_sized_output_requires_exponential_plan_size() {
    // The paper conjectures powerset is inexpressible.  A weak, checkable
    // facet: every operator's output size is polynomial in its input and
    // plan sizes (no operator is exponential on its own), so producing the
    // 2^n-element powerset of an n-set with a FIXED plan cannot come from
    // one primitive.  We verify the per-operator bound on the worst
    // offender, ×: |A × B| = |A|·|B|.
    let mut db = Database::new();
    db.optimize = false;
    db.put_object(
        "N",
        SchemaType::set(SchemaType::int4()),
        Value::set((0..40).map(Value::int)),
    );
    let sq = db
        .run_plan(&Expr::named("N").cross(Expr::named("N")))
        .unwrap();
    assert_eq!(sq.as_set().unwrap().len(), 1600);
}
