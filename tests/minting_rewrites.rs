//! REF-minting plans under the rewrite engine: duplication-sensitive
//! rules must refuse to fire on minting subexpressions, and everything
//! that does fire must preserve results modulo object identity —
//! including the *sharing structure* (canonical forms distinguish two
//! references to one object from references to two equal-valued objects).

use excess::algebra::canonical_form;
use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::db::Database;
use excess::optimizer::{Optimizer, RuleCtx};
use excess::types::{SchemaType, Value};

fn database() -> Database {
    let mut db = Database::new();
    db.optimize = false;
    db.execute("define type Cell: (v: int4)").unwrap();
    db.put_object(
        "Nums",
        SchemaType::set(SchemaType::int4()),
        Value::set([1, 1, 2, 3].map(Value::int)),
    );
    db.put_object(
        "NumsB",
        SchemaType::set(SchemaType::int4()),
        Value::set([2, 4].map(Value::int)),
    );
    db
}

fn mint_body() -> Expr {
    Expr::input().make_tup("v").make_ref("Cell")
}

fn minting_seeds() -> Vec<Expr> {
    let nums = || Expr::named("Nums");
    let numsb = || Expr::named("NumsB");
    vec![
        // The shapes whose naive rewrites would change mint counts:
        // distribute × over ⊎ with a minting side,
        nums()
            .set_apply(mint_body())
            .cross(numsb().add_union(nums())),
        // disjunctive σ over a minting input,
        nums().set_apply(mint_body()).select(Pred::Not(Box::new(
            Pred::cmp(Expr::input().deref().extract("v"), CmpOp::Eq, Expr::int(1))
                .not()
                .and(Pred::cmp(Expr::input().deref().extract("v"), CmpOp::Eq, Expr::int(2)).not()),
        ))),
        // DE over a minting SET_APPLY over ×,
        Expr::DupElim(Box::new(nums().cross(numsb()).set_apply(
            Expr::input().extract("fst").make_tup("v").make_ref("Cell"),
        ))),
        // GRP over × whose other side mints,
        nums()
            .cross(numsb().set_apply(mint_body()))
            .group_by(Expr::input().extract("fst")),
        // fusion across a minting inner body (rule 15 — this one is fine
        // and SHOULD still fire),
        nums()
            .set_apply(mint_body())
            .set_apply(Expr::input().deref().extract("v")),
    ]
}

#[test]
fn every_rewrite_of_a_minting_plan_is_sound_modulo_identity() {
    let mut db = database();
    let opt = Optimizer::standard();
    let mut checked = 0;
    for seed in minting_seeds() {
        let base = db.run_plan(&seed).unwrap();
        let base_canon = canonical_form(&base, db.store());
        let ctx = RuleCtx {
            registry: db.registry(),
            schemas: db.catalog(),
        };
        for (rule, alt) in opt.neighbors(&seed, &ctx) {
            let out = db
                .run_plan(&alt)
                .unwrap_or_else(|e| panic!("rule {rule} broke {seed}: {e}"));
            let out_canon = canonical_form(&out, db.store());
            assert_eq!(
                base_canon, out_canon,
                "rule {rule} changed a minting plan:\n  {seed}\n→ {alt}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "some rewrites must still apply to minting plans"
    );
}

#[test]
fn fusion_still_fires_on_minting_bodies() {
    // Rule 15 preserves application counts, so it remains available even
    // when the inner body mints.
    let db = database();
    let opt = Optimizer::standard();
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let seed = Expr::named("Nums")
        .set_apply(mint_body())
        .set_apply(Expr::input().deref().extract("v"));
    let fired: Vec<&str> = opt
        .neighbors(&seed, &ctx)
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    assert!(fired.contains(&"rule15-combine-set-applys"), "{fired:?}");
}

#[test]
fn sharing_structure_is_what_canonical_forms_protect() {
    // Two plans with equal deref'd values but different sharing must NOT
    // be identified: one object referenced twice ≠ two equal objects.
    let mut db = database();
    let shared = Expr::int(7)
        .make_tup("v")
        .make_ref("Cell")
        .make_set()
        .set_apply(Expr::input().make_set())
        .set_collapse(); // { r } — one object
    let one = db.run_plan(&shared).unwrap();
    let r = one
        .as_set()
        .unwrap()
        .iter_occurrences()
        .next()
        .unwrap()
        .clone();
    let two_shared = Value::set([r.clone(), r.clone()]);
    let fresh_plan = Expr::int(7).make_tup("v").make_ref("Cell");
    let r2 = db.run_plan(&fresh_plan).unwrap();
    let two_distinct = Value::set([r, r2]);
    assert_ne!(
        canonical_form(&two_shared, db.store()),
        canonical_form(&two_distinct, db.store())
    );
}
