//! Negative-case coverage for the static plan verifier: one deliberately
//! ill-formed plan per diagnostic class, asserting the node path and the
//! severity that render in the diagnostic — plus the "clean" direction:
//! every paper figure plan verifies without errors.

mod common;

use excess_bench::dispatch::{dispatch_db, switch_plan, trivial_impls};
use excess_bench::example1::{example1_db, figure6, figure7, figure8};
use excess_bench::example2::{example2_db, figure10, figure11, figure9};
use excess_core::expr::{Bound, CmpOp, Expr, Func, Pred};
use excess_core::verify::{verify, Report, Severity};
use excess_db::Database;
use excess_optimizer::{Optimizer, Rule, RuleCtx};
use excess_types::Value;

fn report(db: &Database, e: &Expr) -> Report {
    verify(e, db.catalog(), db.registry())
}

/// Assert `r` contains a diagnostic of class `code` with the given
/// severity whose rendered form mentions `path_repr` (e.g. "[0.1]").
fn assert_has(r: &Report, code: &str, severity: Severity, path_repr: &str) {
    let found = r
        .diagnostics
        .iter()
        .any(|d| d.code == code && d.severity == severity && d.to_string().contains(path_repr));
    assert!(
        found,
        "expected a {severity}[{code}] diagnostic at {path_repr}; got:\n{}",
        r.render()
    );
}

// ---------------------------------------------------------------- clean

#[test]
fn example1_figures_verify_clean() {
    let db = example1_db(20, 20, 2);
    for (name, plan) in [
        ("fig6", figure6()),
        ("fig7", figure7()),
        ("fig8", figure8()),
    ] {
        let r = report(&db, &plan);
        assert!(r.is_clean(), "{name} not clean:\n{}", r.render());
        assert!(r.schema.is_some(), "{name}: no output schema");
    }
}

#[test]
fn example2_figures_verify_clean() {
    let db = example2_db(20, 3, 4);
    for (name, plan) in [
        ("fig9", figure9()),
        ("fig10", figure10()),
        ("fig11", figure11()),
    ] {
        let r = report(&db, &plan);
        assert!(r.is_clean(), "{name} not clean:\n{}", r.render());
    }
}

#[test]
fn dispatch_plans_verify_clean() {
    let db = dispatch_db(20, 2);
    let r = report(&db, &switch_plan(&trivial_impls()));
    assert!(r.is_clean(), "switch plan not clean:\n{}", r.render());
}

#[test]
fn optimized_figures_stay_clean() {
    let db = example1_db(20, 20, 2);
    for plan in [figure6(), figure7(), figure8()] {
        let opt = db.optimize_plan(&plan);
        let r = report(&db, &opt);
        assert!(r.is_clean(), "optimized plan not clean:\n{}", r.render());
    }
}

// ------------------------------------------- error classes, one each

#[test]
fn error_sort_mismatch() {
    // DE over an array: wrong sort for the multiset operator.
    let db = common::database();
    let r = report(&db, &Expr::named("Arr").dup_elim());
    assert_has(&r, "sort-mismatch", Severity::Error, "at root");
}

#[test]
fn error_unknown_object() {
    let db = common::database();
    let r = report(&db, &Expr::named("NoSuchObject").dup_elim());
    assert_has(&r, "unknown-object", Severity::Error, "at [0]");
}

#[test]
fn error_unknown_type() {
    let db = common::database();
    let r = report(&db, &Expr::named("OneTup").make_ref("NoSuchType"));
    assert_has(&r, "unknown-type", Severity::Error, "at root");
}

#[test]
fn error_unbound_input() {
    let db = common::database();
    // INPUT^5 under a single binder: unbound.
    let r = report(&db, &Expr::named("S").set_apply(Expr::input_at(5)));
    assert_has(&r, "unbound-input", Severity::Error, "at [1]");
}

#[test]
fn error_no_such_field() {
    let db = common::database();
    let r = report(&db, &Expr::named("OneTup").extract("zzz"));
    assert_has(&r, "no-such-field", Severity::Error, "at root");
}

#[test]
fn error_schema_incompatible_union() {
    // ∪ of {Person} with {{int4}} — element schemas cannot join.
    let db = common::database();
    let plan = Expr::Union(Box::new(Expr::named("S")), Box::new(Expr::named("Nested")));
    let r = report(&db, &plan);
    assert_has(&r, "schema-incompatible", Severity::Error, "at root");
}

#[test]
fn error_oid_domain_value_outside_dom() {
    // §3.1 amended definition v′: an int4 cannot inhabit dom(Person).
    let db = common::database();
    let r = report(&db, &Expr::int(3).make_ref("Person"));
    assert_has(&r, "oid-domain", Severity::Error, "at root");
    assert!(r.render().contains("v′"), "{}", r.render());
}

#[test]
fn error_oid_domain_disjoint_ref_comparison() {
    // §3.1 rule 4: Person and Person2Cell share no descendant, so their
    // OID domains are disjoint and the equality can never hold.
    let db = common::database();
    let person_ref = Expr::lit(Value::tuple([
        ("name", Value::str("p")),
        ("grp", Value::int(0)),
    ]))
    .make_ref("Person");
    let cell_ref = Expr::named("OneTup").make_ref("Person2Cell");
    let plan = Expr::named("OneTup").comp(Pred::cmp(person_ref, CmpOp::Eq, cell_ref));
    let r = report(&db, &plan);
    assert_has(&r, "oid-domain", Severity::Error, "at root");
    assert!(r.render().contains("rule 4"), "{}", r.render());
}

#[test]
fn error_predicate_type() {
    // COMP predicate comparing int4 with char[].
    let db = common::database();
    let plan = Expr::named("OneTup").comp(Pred::cmp(
        Expr::input().extract("x"),
        CmpOp::Lt,
        Expr::str("ten"),
    ));
    let r = report(&db, &plan);
    assert_has(&r, "predicate-type", Severity::Error, "at root");
}

#[test]
fn error_arity() {
    let db = common::database();
    let r = report(&db, &Expr::call(Func::Age, vec![]));
    assert_has(&r, "arity", Severity::Error, "at root");
}

#[test]
fn error_arr_bound() {
    // Array indices are 1-based; index 0 can never exist.
    let db = common::database();
    let r = report(&db, &Expr::named("Arr").arr_extract(0));
    assert_has(&r, "arr-bound", Severity::Error, "at root");
}

// ------------------------------------------------ lint catalogue

#[test]
fn lint_dead_projection() {
    let db = common::database();
    let r = report(&db, &Expr::named("OneTup").project(["x", "y"]));
    assert_has(&r, "lint-dead-projection", Severity::Lint, "at root");
    assert!(r.is_clean(), "lints must not make a plan unclean");
}

#[test]
fn lint_ref_deref_round_trip() {
    let db = common::database();
    let r = report(&db, &Expr::named("OneTup").make_ref("Person2Cell").deref());
    assert_has(&r, "lint-ref-deref", Severity::Lint, "at root");
}

#[test]
fn lint_de_de() {
    let db = common::database();
    let r = report(&db, &Expr::named("S").dup_elim().dup_elim());
    assert_has(&r, "lint-de-de", Severity::Lint, "at root");
}

#[test]
fn lint_de_above_group() {
    let db = common::database();
    let r = report(
        &db,
        &Expr::named("S")
            .group_by(Expr::input().extract("grp"))
            .dup_elim(),
    );
    assert_has(&r, "lint-de-above-group", Severity::Lint, "at root");
    // The rule-8 shape: DE over SET_APPLY over GRP.
    let r = report(
        &db,
        &Expr::named("S")
            .group_by(Expr::input().extract("grp"))
            .set_apply(Expr::input().dup_elim())
            .dup_elim(),
    );
    assert_has(&r, "lint-de-above-group", Severity::Lint, "at root");
}

#[test]
fn lint_unused_and_shadowed_binders() {
    let db = common::database();
    let r = report(&db, &Expr::named("S").set_apply(Expr::int(1)));
    assert_has(&r, "lint-unused-binder", Severity::Lint, "at root");
    // Inner SET_APPLY ignores its own INPUT but uses the outer binder's.
    let plan =
        Expr::named("S").set_apply(Expr::named("T").set_apply(Expr::input_at(1).extract("name")));
    let r = report(&db, &plan);
    assert_has(&r, "lint-shadowed-binder", Severity::Lint, "at [1]");
}

#[test]
fn lint_null_comparison() {
    let db = common::database();
    let plan = Expr::named("OneTup").comp(Pred::cmp(
        Expr::input().extract("x"),
        CmpOp::Eq,
        Expr::lit(Value::dne()),
    ));
    let r = report(&db, &plan);
    assert_has(&r, "lint-null-comparison", Severity::Lint, "at root");
}

#[test]
fn lint_dead_type_filter() {
    // Person2Cell does not inherit Person, so the filter never matches.
    let db = common::database();
    let plan = Expr::named("Mixed").set_apply_only(["Person2Cell"], Expr::input());
    let r = report(&db, &plan);
    assert_has(&r, "lint-dead-type-filter", Severity::Lint, "at root");
}

#[test]
fn lint_empty_subarr() {
    let db = common::database();
    let r = report(&db, &Expr::named("Arr").subarr(Bound::At(5), Bound::At(2)));
    assert_has(&r, "lint-empty-subarr", Severity::Lint, "at root");
}

#[test]
fn lint_heterogeneous_add_union() {
    let db = common::database();
    let plan = Expr::named("S")
        .set_apply(Expr::input().extract("name"))
        .add_union(Expr::named("S").set_apply(Expr::input().extract("grp")));
    let r = report(&db, &plan);
    assert_has(&r, "lint-heterogeneous-union", Severity::Lint, "at root");
    assert!(r.is_clean());
}

#[test]
fn lint_switch_arm_divergence() {
    let db = common::database();
    let plan = Expr::SetApplySwitch {
        input: Box::new(Expr::named("Mixed")),
        table: vec![
            ("Person".into(), Expr::input().extract("name")),
            ("Employee".into(), Expr::input().extract("salary")),
        ],
    };
    let r = report(&db, &plan);
    assert_has(&r, "lint-switch-arm-divergence", Severity::Lint, "at root");
}

// ------------------------------------- multiple independent errors

#[test]
fn two_independent_errors_both_reported_with_paths() {
    // Child 0 holds a projection of a missing field; child 1 applies DE to
    // an array.  Neither failure masks the other, and each diagnostic
    // carries the path of its own subtree.
    let db = common::database();
    let plan = Expr::Cross(
        Box::new(Expr::named("OneTup").project(["nope"]).make_set()),
        Box::new(Expr::named("Arr").dup_elim()),
    );
    let r = report(&db, &plan);
    assert!(
        r.error_count() >= 2,
        "expected ≥2 errors, got:\n{}",
        r.render()
    );
    assert_has(&r, "no-such-field", Severity::Error, "at [0.0]");
    assert_has(&r, "sort-mismatch", Severity::Error, "at [1]");
}

#[test]
fn inference_and_verifier_render_positions_identically() {
    // Satellite fix: `InferError` now carries the node path, so the first
    // inference failure and the corresponding verifier diagnostic point at
    // the same position in the same format.
    let db = common::database();
    let plan = Expr::named("NoSuchObject").dup_elim();
    let infer_err =
        excess_core::infer::infer_closed(&plan, db.catalog(), db.registry()).unwrap_err();
    let rendered = infer_err.to_string();
    assert!(rendered.contains("at [0]"), "{rendered}");
    assert!(
        rendered.contains("unknown object `NoSuchObject`"),
        "{rendered}"
    );
    let r = report(&db, &plan);
    let diag = r
        .errors()
        .find(|d| d.code == "unknown-object")
        .expect("verifier reports the same problem");
    assert_eq!(excess_core::profile::path_string(&diag.path), "[0]");
    assert!(diag.message.contains("unknown object `NoSuchObject`"));
}

// ------------------------------------- the rewrite-soundness gate

/// A deliberately unsound test-only rule: `DE(A) → SET(A)` is cheaper
/// under the cost model but changes the output schema from {T} to {{T}}.
struct BreakDe;

impl Rule for BreakDe {
    fn name(&self) -> &'static str {
        "test-break-de"
    }
    fn apply(&self, e: &Expr, _ctx: &RuleCtx<'_>) -> Vec<Expr> {
        match e {
            Expr::DupElim(a) => vec![(**a).clone().make_set()],
            _ => vec![],
        }
    }
}

#[test]
fn gate_refuses_schema_breaking_rule_and_journals_it() {
    let db = common::database();
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let opt = Optimizer::with_rules(vec![Box::new(BreakDe)]);
    let seed = Expr::named("S").dup_elim();
    let (best, journal) = opt.optimize_greedy_journaled(&seed, &ctx, db.statistics());
    // The unsound rewrite was cheaper but must not be taken…
    assert_eq!(best.plan, seed, "gate failed to refuse the unsound rewrite");
    assert!(journal.steps.is_empty());
    // …and the refusal is recorded in the journal with rule, path, reason.
    let refusal = journal
        .refused
        .iter()
        .find(|r| r.rule == "test-break-de")
        .expect("refusal journaled");
    assert_eq!(refusal.path, Vec::<usize>::new());
    assert!(
        refusal.reason.contains("schema"),
        "reason should mention the schema change: {}",
        refusal.reason
    );
    // The refusal also shows up in the serialized journal.
    let json = excess_db::journal_json(&journal);
    assert!(json.contains("\"refused\":[{"), "{json}");
    assert!(json.contains("test-break-de"), "{json}");
}

#[test]
fn extent_substitution_is_journaled_and_gated() {
    use excess_optimizer::{apply_extent_indexes_journaled, RewriteJournal};
    let db = common::database();
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    // An index is advertised in the statistics, but the catalog has no
    // `S::exact::…` objects backing it — the substitution must be refused
    // by the gate rather than producing an unevaluable plan.
    let mut stats = excess_optimizer::Statistics::new();
    stats.add_extent_index("S", "Person");
    let plan = Expr::named("S").set_apply_only(["Person"], Expr::input().extract("name"));
    let mut journal = RewriteJournal {
        steps: vec![],
        refused: vec![],
        plans_enumerated: 1,
        max_plans: 0,
        initial_cost: 0.0,
        final_cost: 0.0,
    };
    let out = apply_extent_indexes_journaled(&plan, &stats, &ctx, &mut journal);
    assert_eq!(out, plan, "unbacked extent substitution must not be taken");
    let refusal = journal
        .refused
        .iter()
        .find(|r| r.rule == "extent-index-substitution")
        .expect("refusal journaled");
    assert!(
        refusal.reason.contains("S::exact::Person"),
        "{}",
        refusal.reason
    );
}
