//! End-to-end telemetry invariants on the paper's figure suite.
//!
//! The load-bearing property is *telescoping*: with query spans enabled,
//! summing any work counter over a query's span tree must reproduce the
//! query's total exactly — the span tree is a lossless decomposition of
//! the profiler's accounting, serial or parallel.  Around that sit the
//! always-on pieces: the latency histogram's exact-count invariants, the
//! flight recorder's FIFO ring, and the misestimation feedback log fed
//! by `explain analyze`.

use std::collections::BTreeMap;

use excess::algebra::profile::path_string;
use excess::db::Database;
use excess::optimizer::estimate_nodes;
use excess::telemetry::{q_error, FlightRecorder};
use excess_bench::example1::{example1_db, figure6, figure7, figure8};

/// Run the Example 1 figures with spans on and assert every counter
/// telescopes through the span tree.
fn assert_figures_telescope(db: &mut Database) {
    db.enable_query_spans(true);
    for (id, plan) in [("F6", figure6()), ("F7", figure7()), ("F8", figure8())] {
        db.run_query_plan(id, &plan).unwrap();
        let total = db.last_counters();
        let trace = db.last_query_trace().expect("spans are enabled");
        for (name, v) in total.named_fields() {
            assert_eq!(
                trace.root.sum_num(name),
                v,
                "{id}: `{name}` must sum over the span tree to the query total"
            );
        }
        assert_eq!(trace.query, id);
    }
}

#[test]
fn spans_telescope_to_profiler_counters_serial() {
    let mut db = example1_db(64, 48, 8);
    db.set_threads(1);
    assert_figures_telescope(&mut db);
    assert_eq!(db.last_query_trace().unwrap().engine, "serial");
}

#[test]
fn spans_telescope_to_profiler_counters_parallel() {
    let mut db = example1_db(64, 48, 8);
    db.set_threads(4);
    assert_figures_telescope(&mut db);
    let trace = db.last_query_trace().unwrap();
    assert_eq!(trace.engine, "parallel(4)");
    // The execute phase carries one child span per worker lane.
    let execute = trace.root.find("execute").expect("execute span");
    let workers = execute
        .children
        .iter()
        .filter(|s| s.name.starts_with("worker:"))
        .count();
    assert_eq!(workers, 4);
}

#[test]
fn latency_histogram_invariants_hold_after_a_query_batch() {
    let mut db = example1_db(64, 48, 8);
    for plan in [figure6(), figure7(), figure8(), figure6()] {
        db.run_query_plan("q", &plan).unwrap();
    }
    let h = db
        .telemetry()
        .registry
        .histogram("query_us")
        .expect("every query observes query_us");
    // Exact counts: the buckets partition the observations.
    assert_eq!(h.count(), 4);
    assert_eq!(h.bucket_sum(), h.count());
    // Quantiles are monotone and bracketed by the observed extremes.
    let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    assert!(p99 <= h.max().unwrap());
    assert_eq!(db.telemetry().registry.counter("queries"), 4);
}

#[test]
fn flight_recorder_evicts_fifo_at_capacity() {
    let mut db = example1_db(64, 48, 8);
    db.set_threads(1);
    db.telemetry_mut().recorder = FlightRecorder::new(2);
    for (id, plan) in [("F6", figure6()), ("F7", figure7()), ("F8", figure8())] {
        db.run_query_plan(id, &plan).unwrap();
    }
    let rec = &db.telemetry().recorder;
    // Three queries through a ring of two: F6 was evicted, order kept.
    assert_eq!(rec.recorded(), 3);
    assert_eq!(rec.len(), 2);
    let labels: Vec<&str> = rec.records().map(|r| r.query.as_str()).collect();
    assert_eq!(labels, ["F7", "F8"]);
    for r in rec.records() {
        assert_eq!(r.engine, "serial");
        assert!(r.total_us() > 0, "phase timings must be recorded");
        assert!(!r.kernels.is_empty(), "kernel choices must be recorded");
    }
}

#[test]
fn flight_recorder_slow_threshold_filters_records() {
    let mut db = example1_db(64, 48, 8);
    db.run_query_plan("F6", &figure6()).unwrap();
    let rec = &mut db.telemetry_mut().recorder;
    rec.set_slow_threshold_us(u64::MAX);
    assert_eq!(rec.slow().count(), 0);
    rec.set_slow_threshold_us(0);
    assert_eq!(rec.slow().count(), 1);
}

#[test]
fn feedback_log_matches_explain_analyze_est_vs_actual() {
    let mut db = example1_db(64, 48, 8);
    let stats = db.analyze().clone();
    let plan = figure6();
    // The same per-node estimates the lowering stamps onto its choices.
    let ests: BTreeMap<String, f64> = estimate_nodes(&plan, &stats)
        .into_iter()
        .map(|(p, e)| (path_string(&p), e.rows))
        .collect();
    db.explain_analyze(&plan).unwrap();
    let fb = &db.telemetry().feedback;
    assert!(!fb.is_empty(), "explain analyze must feed the log");
    for e in fb.entries() {
        assert_eq!(e.observations, 1);
        // The estimate side is exactly the optimizer's per-node estimate…
        let est = ests
            .get(&e.path)
            .unwrap_or_else(|| panic!("no estimate for feedback path {}", e.path));
        assert!(
            (e.est_rows_sum - est).abs() < 1e-9,
            "{}: est {} != optimizer estimate {est}",
            e.path,
            e.est_rows_sum
        );
        // …and the recorded q-error is derivable from est and actual.
        assert_eq!(e.max_q_error, q_error(e.est_rows_sum, e.actual_rows_sum));
        assert!(e.max_q_error >= 1.0);
    }
    // A second analyze of the same plan accumulates, not duplicates.
    let before = fb.len();
    db.explain_analyze(&plan).unwrap();
    let fb = &db.telemetry().feedback;
    assert_eq!(fb.len(), before);
    assert!(fb.entries().all(|e| e.observations == 2));
    // `worst` ranks by q-error, descending.
    let worst: Vec<f64> = fb.worst(8).iter().map(|e| e.max_q_error).collect();
    assert!(worst.windows(2).all(|w| w[0] >= w[1]), "{worst:?}");
}

#[test]
fn disabling_spans_clears_the_last_trace() {
    let mut db = example1_db(64, 48, 8);
    db.enable_query_spans(true);
    db.run_query_plan("F6", &figure6()).unwrap();
    assert!(db.last_query_trace().is_some());
    db.enable_query_spans(false);
    assert!(db.last_query_trace().is_none());
    // With spans off, queries still feed the always-on registry…
    db.run_query_plan("F6", &figure6()).unwrap();
    assert!(db.last_query_trace().is_none());
    assert_eq!(db.telemetry().registry.counter("queries"), 2);
}
