//! Schema dump: the whole catalog as EXTRA DDL, and its round trip
//! through a fresh database.

use excess::db::Database;
use excess::workload::{generate, UniversityParams};

#[test]
fn university_schema_round_trips_through_its_dump() {
    let original = generate(&UniversityParams::tiny()).unwrap().db;
    let ddl = original.dump_schema();
    // The dump is valid EXCESS…
    let mut fresh = Database::new();
    fresh
        .execute(&ddl)
        .unwrap_or_else(|e| panic!("dump did not re-execute: {e}\n{ddl}"));
    // …and reproduces both the type hierarchy and the object schemas.
    assert_eq!(fresh.registry().len(), original.registry().len());
    for id in original.registry().all_ids() {
        let name = original.registry().name_of(id);
        let a = original.registry().full_body(id).unwrap();
        let b = fresh
            .registry()
            .full_body(fresh.registry().lookup(name).unwrap())
            .unwrap();
        assert_eq!(a, b, "type {name}");
    }
    let mut names: Vec<&str> = original.catalog().names().collect();
    names.sort_unstable();
    for n in names {
        assert_eq!(
            original.catalog().schema(n),
            fresh.catalog().schema(n),
            "object {n}"
        );
    }
    // Dumping the fresh database gives the same text (fixpoint).
    assert_eq!(fresh.dump_schema(), ddl);
}

#[test]
fn dump_mentions_inheritance_and_fixed_arrays() {
    let db = generate(&UniversityParams::tiny()).unwrap().db;
    let ddl = db.dump_schema();
    assert!(ddl.contains("inherits Person"), "{ddl}");
    assert!(
        ddl.contains("create TopTen: array [1..10] of ref Employee"),
        "{ddl}"
    );
    assert!(ddl.contains("create P: { Person }"), "{ddl}");
}

#[test]
fn deeply_nested_queries_do_not_overflow() {
    // A 6-level nested aggregate pipeline: robustness, and the plan stays
    // evaluable and inferable.
    let mut db = Database::new();
    db.execute("retrieve ({ 1, 2, 3 }) into N").unwrap();
    let src = "retrieve (sum(sum(sum(x + y + z from z in N) from y in N) from x in N))";
    let out = db.execute(src).unwrap();
    // Σx Σy Σz (x+y+z) over {1,2,3}³ = 3·(Σ over 27 terms)… check by hand:
    // inner-most per (x,y): Σz (x+y+z) = 3(x+y)+6; next: Σy = 9x+18+18? —
    // just compare against a direct computation.
    let mut expect = 0;
    for x in 1..=3 {
        for y in 1..=3 {
            for z in 1..=3 {
                expect += x + y + z;
            }
        }
    }
    assert_eq!(out, excess::types::Value::int(expect));
}
