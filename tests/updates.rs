//! The EXCESS update statements: `append to`, `delete from`, `replace`,
//! `assign`, and their interaction with object identity, extent indexes,
//! and `range of` aliases.

use excess::db::Database;
use excess::types::Value;

fn dept_db() -> Database {
    let mut db = Database::new();
    db.execute(
        r#"define type Dept: (name: char[], floor: int4)
           create Depts: { Dept }
           append to Depts (name: "CS", floor: 2)
           append to Depts (name: "Math", floor: 3)
           append to Depts (name: "Stats", floor: 3)"#,
    )
    .unwrap();
    db
}

#[test]
fn append_and_count() {
    let mut db = dept_db();
    let n = db.execute("retrieve (count(Depts))").unwrap();
    assert_eq!(n, Value::int(3));
}

#[test]
fn delete_by_object_name() {
    let mut db = dept_db();
    db.execute("delete from Depts where Depts.floor = 3")
        .unwrap();
    let names = db.execute("retrieve (D.name) from D in Depts").unwrap();
    assert_eq!(names, Value::set([Value::str("CS")]));
}

#[test]
fn delete_by_range_alias() {
    let mut db = dept_db();
    db.execute("range of D is Depts").unwrap();
    db.execute(r#"delete from Depts where D.name = "CS""#)
        .unwrap();
    let n = db.execute("retrieve (count(Depts))").unwrap();
    assert_eq!(n, Value::int(2));
}

#[test]
fn replace_value_elements() {
    let mut db = dept_db();
    // Move every 3rd-floor department up one floor, referencing the old
    // value through the object name.
    db.execute("replace Depts (floor: Depts.floor + 1) where Depts.floor = 3")
        .unwrap();
    let floors = db.execute("retrieve (D.floor) from D in Depts").unwrap();
    assert_eq!(
        floors,
        Value::set([Value::int(2), Value::int(4), Value::int(4)])
    );
}

#[test]
fn replace_without_filter_hits_everything() {
    let mut db = dept_db();
    db.execute(r#"replace Depts (name: "X")"#).unwrap();
    let names = db
        .execute("retrieve unique (D.name) from D in Depts")
        .unwrap();
    assert_eq!(names, Value::set([Value::str("X")]));
}

#[test]
fn replace_through_references_preserves_identity() {
    let mut db = Database::new();
    db.execute(
        r#"define type Emp: (name: char[], salary: int4)
           create Emps: { ref Emp }
           create Favourites: { ref Emp }
           append to Emps (name: "Ada", salary: 90000)
           append to Emps (name: "Bob", salary: 50000)"#,
    )
    .unwrap();
    // Share Ada's identity into a second set.
    db.execute(r#"retrieve (x) from x in Emps where x.name = "Ada" into AdaRefs"#)
        .unwrap();
    let ada_ref = db
        .catalog()
        .value("AdaRefs")
        .unwrap()
        .as_set()
        .unwrap()
        .iter_occurrences()
        .next()
        .unwrap()
        .clone();
    // Raise salaries through Emps…
    db.execute("replace Emps (salary: Emps.salary + 1000) where Emps.salary < 60000")
        .unwrap();
    db.execute(r#"replace Emps (salary: 100000) where Emps.name = "Ada""#)
        .unwrap();
    // …and observe the change through the *shared* reference.
    let oid = ada_ref.as_ref_oid().unwrap();
    let ada = db.store().deref(oid).unwrap();
    assert_eq!(
        ada.as_tuple().unwrap().get("salary").unwrap(),
        &Value::int(100_000)
    );
    let bob_salary = db
        .execute(r#"retrieve (the((retrieve (e.salary) from e in Emps where e.name = "Bob")))"#)
        .unwrap();
    assert_eq!(bob_salary, Value::int(51_000));
}

#[test]
fn replace_unknown_field_is_an_error() {
    let mut db = dept_db();
    assert!(db.execute("replace Depts (bogus: 1)").is_err());
}

#[test]
fn replace_validates_domains() {
    let mut db = dept_db();
    // floor must stay int4; a string violates the element domain.
    assert!(db.execute(r#"replace Depts (floor: "nope")"#).is_err());
}

#[test]
fn assign_into_fixed_array() {
    let mut db = Database::new();
    db.execute(
        r#"define type Emp: (name: char[], salary: int4)
           create Board: array [1..3] of ref Emp"#,
    )
    .unwrap();
    db.execute(r#"assign Board[2] ((name: "Ada", salary: 1))"#)
        .unwrap();
    let v = db.execute("retrieve (Board[2].name)").unwrap();
    assert_eq!(v, Value::str("Ada"));
    // Unassigned slots are dne; extracting a field of dne stays dne.
    let empty = db.execute("retrieve (Board[1])").unwrap();
    assert!(empty.is_dne());
    // Out-of-range assigns are rejected.
    assert!(db
        .execute(r#"assign Board[9] ((name: "X", salary: 2))"#)
        .is_err());
}

#[test]
fn updates_maintain_extent_indexes() {
    let mut db = Database::new();
    db.execute(
        r#"define type Person: (name: char[])
           define type Employee: (salary: int4) inherits Person
           create P: { Person }"#,
    )
    .unwrap();
    db.create_extent_index("P", "Person").unwrap();
    db.create_extent_index("P", "Employee").unwrap();
    db.execute(r#"append to P (name: "plain")"#).unwrap();
    db.execute(r#"append to P (name: "emp", salary: 10)"#)
        .unwrap();
    let person_extent = db.catalog().value("P::exact::Person").unwrap();
    let employee_extent = db.catalog().value("P::exact::Employee").unwrap();
    assert_eq!(person_extent.as_set().unwrap().len(), 1);
    assert_eq!(employee_extent.as_set().unwrap().len(), 1);
    db.execute(r#"delete from P where P.name = "plain""#)
        .unwrap();
    assert_eq!(
        db.catalog()
            .value("P::exact::Person")
            .unwrap()
            .as_set()
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn retrieve_into_creates_objects() {
    let mut db = dept_db();
    db.execute("retrieve unique (D.floor) from D in Depts into Floors")
        .unwrap();
    let floors = db.execute("retrieve (Floors)").unwrap();
    assert_eq!(floors, Value::set([Value::int(2), Value::int(3)]));
    // …and the derived object is queryable like any other.
    let mx = db.execute("retrieve (max(Floors))").unwrap();
    assert_eq!(mx, Value::int(3));
}
