//! Soundness of the transformation-rule catalogue.
//!
//! The Appendix "omit[s] the validity proofs for these transformations as
//! most of them are straightforward algebraic and multiset-theoretic
//! manipulations" — here every rewrite the engine can reach from a battery
//! of seed plans is *checked by evaluation*: each one-step neighbor must
//! produce the same value as the original (modulo object identity for the
//! rule-28 family; null-free data throughout, matching the rules'
//! stated scope).  A coverage assertion guarantees the battery actually
//! fires every rule family we claim to test.

mod common;

use common::{database, name_pred, seeds};
use excess::algebra::canonical_form;
use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::optimizer::{Optimizer, RuleCtx};
use excess::types::{SchemaType, Value};
use std::collections::HashSet;

#[test]
fn every_reachable_rewrite_is_semantics_preserving() {
    let mut db = database();
    let opt = Optimizer::standard();
    let mut fired: HashSet<&'static str> = HashSet::new();
    let mut checked = 0usize;

    for seed in seeds() {
        let base = db
            .run_plan(&seed)
            .unwrap_or_else(|e| panic!("seed eval failed for {seed}: {e}"));
        let base_canon = canonical_form(&base, db.store());
        let ctx = RuleCtx {
            registry: db.registry(),
            schemas: db.catalog(),
        };
        let neighbors = opt.neighbors(&seed, &ctx);
        for (rule, alt) in neighbors {
            fired.insert(rule);
            let out = db.run_plan(&alt).unwrap_or_else(|e| {
                panic!("rule {rule} broke evaluation:\n  {seed}\n→ {alt}\n{e}")
            });
            let out_canon = canonical_form(&out, db.store());
            assert_eq!(
                base_canon, out_canon,
                "rule {rule} changed the result:\n  {seed}\n→ {alt}"
            );
            checked += 1;
        }
    }
    assert!(checked > 40, "only {checked} rewrites checked");

    // Coverage: the battery must actually exercise these rule families.
    for expected in common::expected_rules() {
        assert!(
            fired.contains(expected),
            "rule `{expected}` never fired; fired = {fired:?}"
        );
    }
}

#[test]
fn two_step_exploration_stays_sound() {
    // Deeper walks: explore up to 64 plans from a grouping pipeline and
    // check every one of them.
    let mut db = database();
    let seed = Expr::named("S")
        .select(name_pred())
        .group_by(Expr::input().extract("grp"))
        .set_apply(Expr::input().dup_elim())
        .dup_elim();
    let base = db.run_plan(&seed).unwrap();
    let mut opt = Optimizer::standard();
    opt.max_plans = 64;
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let plans = opt.explore(&seed, &ctx);
    assert!(plans.len() > 5, "exploration too shallow: {}", plans.len());
    for p in plans {
        let out = db.run_plan(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
        assert_eq!(base, out, "plan {p}");
    }
}

#[test]
fn rel2_join_pushdown_fires_and_is_sound() {
    let mut db = database();
    db.put_object(
        "L",
        SchemaType::set(SchemaType::tuple([
            ("a", SchemaType::int4()),
            ("b", SchemaType::chars()),
        ])),
        Value::set(
            (0..6).map(|i| {
                Value::tuple([("a", Value::int(i % 3)), ("b", Value::str(format!("b{i}")))])
            }),
        ),
    );
    db.put_object(
        "R",
        SchemaType::set(SchemaType::tuple([
            ("c", SchemaType::int4()),
            ("d", SchemaType::chars()),
        ])),
        Value::set(
            (0..5).map(|i| {
                Value::tuple([("c", Value::int(i % 3)), ("d", Value::str(format!("d{i}")))])
            }),
        ),
    );
    let join = Expr::named("L").rel_join(
        Expr::named("R"),
        Pred::cmp(Expr::input().extract("a"), CmpOp::Eq, Expr::int(1)).and(Pred::cmp(
            Expr::input().extract("a"),
            CmpOp::Eq,
            Expr::input().extract("c"),
        )),
    );
    let base = db.run_plan(&join).unwrap();
    let opt = Optimizer::standard();
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let neighbors = opt.neighbors(&join, &ctx);
    let pushed: Vec<_> = neighbors
        .iter()
        .filter(|(r, _)| *r == "rel2-push-select-into-join")
        .collect();
    assert!(!pushed.is_empty(), "rel2 never fired");
    for (_, alt) in neighbors {
        let out = db.run_plan(&alt).unwrap();
        assert_eq!(base, out, "plan {alt}");
    }
}
