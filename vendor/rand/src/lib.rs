//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, deterministic implementation of the `rand` API surface
//! the workload generators need: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — not cryptographic, not a match for the
//! real `StdRng` stream, but stable across runs for a given seed, which is
//! all the workload generators rely on.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by the workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on empty ranges, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
    {
        let (lo, hi_inclusive) = range.to_inclusive_bounds();
        T::sample_inclusive(self.next_u64(), lo, hi_inclusive)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits → a float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Map 64 random bits onto `[lo, hi]` (inclusive).
    fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self;
    /// The value one below `self` (for converting exclusive upper bounds).
    fn decrement(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (bits as u128 % span) as i128) as $t
            }
            fn decrement(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The two range shapes `gen_range` accepts.
pub trait RangeBounds<T: SampleUniform> {
    /// `(low, high)` with an *inclusive* high bound.
    fn to_inclusive_bounds(&self) -> (T, T);
}

impl<T: SampleUniform> RangeBounds<T> for std::ops::Range<T> {
    fn to_inclusive_bounds(&self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample from an empty range");
        (self.start, self.end.decrement())
    }
}

impl<T: SampleUniform> RangeBounds<T> for std::ops::RangeInclusive<T> {
    fn to_inclusive_bounds(&self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..10);
            assert!((-5..10).contains(&x));
            let y: u8 = rng.gen_range(1..=12);
            assert!((1..=12).contains(&y));
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // A fair coin lands on both sides within 64 throws.
        let flips: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.5)).collect();
        assert!(flips.iter().any(|b| *b) && flips.iter().any(|b| !*b));
    }
}
