//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the benches link
//! against this minimal harness instead.  It runs each benchmark closure a
//! configured number of times and prints a one-line median — enough to keep
//! `cargo build --all-targets` and `cargo bench` working, with no
//! statistics, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Runs closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// An opaque benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id (function name + parameter).
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (the real criterion's
    /// sample count; here simply the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stub has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub runs a fixed iteration
    /// count instead of a target measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&name.to_string(), &b);
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() * 1e3 / b.iters.max(1) as f64;
        println!(
            "{}/{id}: {per_iter:.4} ms/iter ({} iters)",
            self.name, b.iters
        );
    }
}

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Identity function the optimizer must assume is opaque.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
