//! Deterministic case runner: config, RNG, and the skip marker used by
//! `prop_assume!`.

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Returned (via `Err`) by a test body when `prop_assume!` rejects the
/// generated inputs; the runner moves on to the next case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestCaseSkip;

/// FNV-1a hash, used to derive a per-test seed from its full path so
/// different properties see different (but stable) streams.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a new stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as usize
    }

    /// Uniform `i128` in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn i128_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as i128
    }

    /// Uniform float in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(41);
        let mut b = TestRng::new(41);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn inclusive_bounds_hold() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let x = rng.usize_inclusive(3, 9);
            assert!((3..=9).contains(&x));
            let y = rng.i128_inclusive(-4, 4);
            assert!((-4..=4).contains(&y));
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
        // Degenerate one-point range.
        assert_eq!(rng.usize_inclusive(5, 5), 5);
    }

    #[test]
    fn fnv1a_distinguishes_names() {
        assert_ne!(fnv1a(b"mod::a"), fnv1a(b"mod::b"));
    }
}
