//! The `Strategy` trait and the combinators / base strategies the
//! workspace's property tests use.
//!
//! Everything generates directly from a [`TestRng`]; there is no
//! intermediate value tree and therefore no shrinking.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` generates the leaves and
    /// `recurse` wraps an inner strategy into one more level of nesting.
    ///
    /// `depth` bounds the nesting; `_size` and `_items` (the real
    /// proptest's total-size and per-collection knobs) are accepted for
    /// API compatibility but collection sizes here come from whatever
    /// `recurse` builds.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            // Each level: half leaves-so-far, half one-level-deeper.
            cur = Union::new(vec![cur, deeper]).boxed();
        }
        cur
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies with the same value type
/// (what `prop_oneof!` builds).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms`. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "Union requires at least one strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

/// Types with a default "anything" strategy, used via [`any`].
pub trait Arbitrary {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        // Bias toward boundary values, like the real proptest's edge bias.
        match rng.next_u64() % 8 {
            0 => 0,
            1 => 1,
            2 => -1,
            3 => i32::MAX,
            4 => i32::MIN,
            _ => rng.next_u64() as i32,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only (no NaN/infinities): boundary cases plus
        // sign * mantissa * 10^exp across a wide dynamic range.
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            4 => f64::MIN_POSITIVE,
            _ => {
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                let exp = rng.i128_inclusive(-12, 12) as i32;
                sign * rng.unit_f64() * 10f64.powi(exp)
            }
        }
    }
}

/// The default strategy for `T` (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Integer types that ranges can sample uniformly.
pub trait UniformInt: Copy {
    /// Widen to `i128` for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrow back (value is guaranteed in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_i128(rng.i128_inclusive(lo, hi - 1))
    }
}

impl<T: UniformInt> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        T::from_i128(rng.i128_inclusive(lo, hi))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `&'static str` strategies interpret the string as a tiny regex subset:
/// literal characters, `[a-z0-9_]`-style classes, `\PC` (any printable
/// char), each optionally followed by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Strategy for `Vec<S::Value>` with length drawn from a range
/// (`prop::collection::vec`).
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy {
            elem: self.elem.clone(),
            len: self.len.clone(),
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.len.start < self.len.end,
            "cannot sample from an empty range"
        );
        let n = rng.usize_inclusive(self.len.start, self.len.end - 1);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size_range)`.
pub fn collection_vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

// ---------------------------------------------------------------------------
// Regex-lite string generation
// ---------------------------------------------------------------------------

enum Atom {
    /// Concrete characters to choose among (a literal or a class).
    Choice(Vec<char>),
    /// `\PC`: any printable character.
    Printable,
}

/// Parse the pattern subset and emit one random instance.
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let set = parse_class(&chars[i + 1..close]);
                i = close + 1;
                Atom::Choice(set)
            }
            '\\' => {
                // Only `\PC` (printable char) is supported.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Printable
                } else {
                    // Escaped literal, e.g. `\.`.
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                    i += 2;
                    Atom::Choice(vec![c])
                }
            }
            c => {
                i += 1;
                Atom::Choice(vec![c])
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        let n = rng.usize_inclusive(min, max);
        for _ in 0..n {
            match &atom {
                Atom::Choice(set) => {
                    out.push(set[rng.usize_inclusive(0, set.len() - 1)]);
                }
                Atom::Printable => out.push(printable_char(rng)),
            }
        }
    }
    out
}

/// Expand `a-z` ranges and single chars inside a `[...]` class.
fn parse_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted range in character class");
            set.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class");
    set
}

/// Parse an optional `{n}` / `{m,n}` following an atom; default `{1}`.
fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    let close = chars[*i..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| *i + p)
        .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((m, n)) => (parse(m), parse(n)),
        None => {
            let n = parse(&body);
            (n, n)
        }
    }
}

/// A printable character: mostly ASCII graphic/space, occasionally a
/// multi-byte codepoint to exercise UTF-8 handling.
fn printable_char(rng: &mut TestRng) -> char {
    if rng.next_u64().is_multiple_of(10) {
        const EXOTIC: [char; 8] = ['é', 'ß', 'λ', '∧', '中', '文', '†', '😀'];
        EXOTIC[rng.usize_inclusive(0, EXOTIC.len() - 1)]
    } else {
        char::from_u32(rng.usize_inclusive(0x20, 0x7e) as u32).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let x = (-4i32..8).generate(&mut rng);
            assert!((-4..8).contains(&x));
            let y = (1u8..=12).generate(&mut rng);
            assert!((1..=12).contains(&y));
            let f = (-1.0e6f64..1.0e6).generate(&mut rng);
            assert!((-1.0e6..1.0e6).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let one = "[a-c]".generate(&mut rng);
            assert_eq!(one.chars().count(), 1);
            assert!(matches!(one.chars().next().unwrap(), 'a'..='c'));

            let p = "\\PC{0,120}".generate(&mut rng);
            assert!(p.chars().count() <= 120);
            assert!(!p.chars().any(|c| c.is_control()));
        }
    }

    #[test]
    fn map_union_just_vec_compose() {
        let mut rng = TestRng::new(5);
        let strat = collection_vec(
            crate::prop_oneof![Just(0i32), (10i32..20).prop_map(|v| v * 2)],
            0..5,
        );
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x == 0 || (20..40).contains(&x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            #[allow(dead_code)]
            Leaf(i32),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(k) => 1 + k.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                collection_vec(inner, 0..3).prop_map(T::Node)
            });
        let mut rng = TestRng::new(6);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
