//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the property tests
//! link against this minimal, dependency-free re-implementation: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, a regex-lite string strategy, the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` / `prop_assume!` macros,
//! and a deterministic case runner.  **No shrinking** is performed: a
//! failing case panics with the standard assertion message.

pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` mirror: everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `proptest::prop` module mirror (collection strategies).
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
}

/// Run a block of property tests.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0i32..10, v in prop::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let seed_base = $crate::test_runner::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)).as_bytes(),
                );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed_base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseSkip> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    let _ = outcome; // Err means prop_assume! skipped the case.
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_eq!($l, $r, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_ne!($l, $r, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseSkip);
        }
    };
}
