//! Section 4 walkthrough: overridden methods and the two dispatch plans.
//!
//! Defines the `boss` method family (overridden on Employee and Student),
//! shows the run-time switch-table plan, the Figure 5 ⊎-based plan, the
//! extent-indexed variant, and the cost model's strategy choice for a
//! trivial versus an expensive method.
//!
//! ```sh
//! cargo run --release --example method_dispatch
//! ```

use excess::algebra::Expr;
use excess::optimizer::{build_switch, build_union, choose, DispatchStrategy, MethodImpl};
use excess::workload::{generate, queries, UniversityParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = generate(&UniversityParams::tiny())?.db;
    db.execute(queries::DEFINE_BOSS)?;

    // The translator renders `x.boss()` as a per-element switch; the
    // optimizer lifts it to a set-level switch or the ⊎ plan.
    let plan = db.plan_for(queries::QUERY_BOSS)?;
    println!("translator output:\n  {plan}\n");
    let optimized = db.optimize_plan(&plan);
    println!("optimizer's choice:\n  {optimized}\n");
    let out = db.run_plan(&optimized)?;
    println!(
        "result ({} bosses): {}\n",
        out.as_set().map(|s| s.len()).unwrap_or(0),
        &out.to_string()[..120.min(out.to_string().len())]
    );

    // Build both Section 4 strategies explicitly from the stored method.
    let impls: Vec<MethodImpl> = db
        .methods()
        .implementations("boss")
        .iter()
        .map(|m| MethodImpl {
            owner: m.owner.clone(),
            body: m.body.clone(),
        })
        .collect();
    let switch = build_switch(Expr::named("P"), &impls);
    let union = build_union(db.registry(), Expr::named("P"), &impls);
    println!("switch-table plan (strategy 1):\n  {switch}\n");
    println!("⊎-based plan (strategy 2, Figure 5):\n  {union}\n");

    let a = db.run_plan(&switch)?;
    let sc = db.last_counters();
    let b = db.run_plan(&union)?;
    let uc = db.last_counters();
    assert_eq!(a, b, "both strategies must agree");
    println!("switch counters: {sc}");
    println!(
        "union  counters: {uc}  ← P scanned {}×",
        uc.named_object_scans
    );

    // Extent indexes make the re-scans free.
    for t in ["Person", "Employee", "Student"] {
        db.create_extent_index("P", t)?;
    }
    let indexed = excess::optimizer::apply_extent_indexes(&union, db.statistics());
    println!("\nindexed ⊎ plan:\n  {indexed}");
    let c = db.run_plan(&indexed)?;
    assert_eq!(b, c);
    println!("indexed counters: {}", db.last_counters());

    // The cost model's advice, per the paper's trade-off discussion.
    let trivial = choose(db.registry(), db.statistics(), "P", &impls);
    println!("\ncost-based choice for trivial `boss`: {trivial:?}");
    assert_eq!(trivial, DispatchStrategy::UnionPerType); // indexes now exist

    Ok(())
}
