//! Working with the algebra directly: build query trees with the fluent
//! API, evaluate them, inspect work counters, transform them with the rule
//! engine, and decompile them back to EXCESS.
//!
//! ```sh
//! cargo run --example algebra_playground
//! ```

use excess::algebra::expr::{CmpOp, Expr, Func, Pred};
use excess::db::Database;
use excess::optimizer::{Optimizer, RuleCtx, Statistics};
use excess::types::{SchemaType, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.put_object(
        "Orders",
        SchemaType::set(SchemaType::tuple([
            ("item", SchemaType::chars()),
            ("qty", SchemaType::int4()),
            ("price", SchemaType::float4()),
        ])),
        Value::set((0..20).map(|i| {
            Value::tuple([
                ("item", Value::str(format!("item{}", i % 4))),
                ("qty", Value::int(1 + i % 3)),
                ("price", Value::float(9.99 + f64::from(i))),
            ])
        })),
    );

    // σ_{qty ≥ 2} then π item — built with the fluent constructors.
    let plan = Expr::named("Orders")
        .select(Pred::cmp(
            Expr::input().extract("qty"),
            CmpOp::Ge,
            Expr::int(2),
        ))
        .set_apply(Expr::input().extract("item"))
        .dup_elim();
    println!("plan:    {plan}");
    let out = db.run_plan(&plan)?;
    println!("result:  {out}");
    println!("work:    {}\n", db.last_counters());

    // Aggregates: revenue = sum of qty*price per order.
    let revenue = Expr::call(
        Func::Sum,
        vec![Expr::named("Orders").set_apply(Expr::call(
            Func::Mul,
            vec![Expr::input().extract("qty"), Expr::input().extract("price")],
        ))],
    );
    println!("revenue: {}\n", db.run_plan(&revenue)?);

    // Grouping: orders per item, then counts per group.
    let per_item = Expr::named("Orders")
        .group_by(Expr::input().extract("item"))
        .set_apply(Expr::call(Func::Count, vec![Expr::input()]));
    println!("order counts per item: {}\n", db.run_plan(&per_item)?);

    // One manual rewrite step: ask the engine for every applicable
    // transformation of the first plan and show a few.
    let stats = Statistics::new();
    let ctx = RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let opt = Optimizer::standard();
    println!("one-step rewrites of the first plan:");
    for (rule, alt) in opt.neighbors(&plan, &ctx).into_iter().take(4) {
        println!("  [{rule}]\n    {alt}");
    }
    let best = opt.optimize_greedy(&plan.desugar(), &ctx, &stats);
    println!(
        "\ngreedy best ({} neighbors examined):\n  {}",
        best.explored, best.plan
    );
    assert_eq!(db.run_plan(&best.plan)?, out);

    // Equipollence in action: the algebra tree as EXCESS text.
    println!(
        "\ndecompiled to EXCESS:\n  {}",
        excess::lang::decompile(&plan, db.registry())?
    );
    Ok(())
}
