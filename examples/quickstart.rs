//! Quickstart: define an EXTRA schema, load data, and query it with EXCESS.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use excess::db::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();

    // EXTRA DDL: tuple types with inheritance, multisets, references.
    db.execute(
        r#"
        define type Person: (name: char[], birthday: Date)
        define type Department: (name: char[], floor: int4)
        define type Employee: (salary: int4, dept: ref Department)
          inherits Person
        create Departments: { ref Department }
        create Employees: { ref Employee }
    "#,
    )?;

    // Updates: appending a tuple to a { ref T } set creates the object and
    // stores a reference to it (object identity for free).
    db.execute(r#"append to Departments (name: "CS", floor: 2)"#)?;
    db.execute(r#"append to Departments (name: "Math", floor: 3)"#)?;

    // Wire employees to their department through a sub-retrieve.
    db.execute(
        r#"append to Employees
           (name: "Ada", birthday: date(1960, 12, 10), salary: 95000,
            dept: the((retrieve (d) from d in Departments where d.name = "CS")))"#,
    )?;
    db.execute(
        r#"append to Employees
           (name: "Emmy", birthday: date(1955, 3, 23), salary: 99000,
            dept: the((retrieve (d) from d in Departments where d.name = "Math")))"#,
    )?;

    // A functional join, QUEL-style: paths silently dereference.
    let out = db.execute(
        r#"retrieve (E.name, E.dept.name, E.dept.floor)
           from E in Employees where E.salary > 96000"#,
    )?;
    println!("employees above 96k: {out}");

    // The same query's algebra plan, before and after optimization.
    let plan = db.plan_for(r#"retrieve (E.name) from E in Employees where E.dept.floor = 2"#)?;
    println!("\ninitial plan:   {plan}");
    println!("optimized plan: {}", db.optimize_plan(&plan));

    // Virtual fields: `age` computes from `birthday` (today = 1990-12-01,
    // the paper's date).
    let ages = db.execute("retrieve (E.name, E.age) from E in Employees")?;
    println!("\nages: {ages}");

    // Methods are EXCESS statements stored as algebra trees and inlined at
    // call sites.
    db.execute(
        r#"define Employee function dept_floor () returns int4
           { retrieve (this.dept.floor) }"#,
    )?;
    let floors = db.execute("retrieve (E.dept_floor()) from E in Employees")?;
    println!("floors via method: {floors}");

    // Grouping with `by`, uniqueness with `unique`.
    let grouped = db.execute(r#"retrieve unique (E.name) by E.dept.floor from E in Employees"#)?;
    println!("names grouped by floor: {grouped}");

    Ok(())
}
