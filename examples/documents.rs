//! Ordered structured documents — the array side of the algebra.
//!
//! The paper positions EXCESS's arrays against the NST office-document
//! algebra [Guti89]: "our operators can be used in such a way that the
//! ordering properties of the arrays can either be preserved or not,
//! depending on the requirements of the query".  This example shows both
//! modes over a nested Document → Section → Paragraph store.
//!
//! ```sh
//! cargo run --release --example documents
//! ```

use excess::algebra::expr::{CmpOp, Expr, Pred};
use excess::workload::{generate_documents, DocumentParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DocumentParams {
        documents: 8,
        ..Default::default()
    };
    let mut db = generate_documents(&params)?.db;

    // Order-preserving: the opening paragraph of every document.
    let openings =
        db.execute("retrieve (D.title, opening = D.sections[1].paras[1].text) from D in Docs")?;
    println!("openings: {openings}\n");

    // Order-preserving slice: the first two sections' titles of one doc.
    let toc = db.execute(
        r#"retrieve (subarr(the((retrieve (D.sections) from D in Docs
                                 where D.title = "Doc 3")), 1, 2).title)"#,
    )?;
    println!("Doc 3, first two sections: {toc}\n");

    // Order-erasing: word statistics ignore paragraph order entirely.
    let stats = db.execute(
        "retrieve (D.title, words = sum(collapse(D.sections.paras).words),
                   longest = max(collapse(D.sections.paras).words))
         from D in Docs",
    )?;
    println!("per-document word stats: {stats}\n");

    // The same distinction in raw algebra: ARR_APPLY keeps positions,
    // while a multiset aggregation of the flattened paragraphs drops them.
    let ordered_styles = Expr::named("Docs").set_apply(
        Expr::input()
            .deref()
            .extract("sections")
            .arr_extract(1)
            .extract("paras")
            .arr_apply(Expr::input().extract("style")),
    );
    let out = db.run_plan(&ordered_styles)?;
    println!("first-section style sequences (ordered arrays):");
    for (v, _) in out.as_set().unwrap().iter_counted() {
        println!("  {v}");
    }

    // Filtering inside an ordered array: long paragraphs of section 1,
    // positions of survivors preserved (array σ drops, never reorders).
    let long_paras = Expr::named("Docs").set_apply(
        Expr::input()
            .deref()
            .extract("sections")
            .arr_extract(1)
            .extract("paras")
            .arr_apply(
                Expr::input()
                    .comp(Pred::cmp(
                        Expr::input().extract("words"),
                        CmpOp::Ge,
                        Expr::int(60),
                    ))
                    .extract("text"),
            ),
    );
    let out = db.run_plan(&long_paras)?;
    println!("\nlong paragraphs of each first section, in document order:");
    for (v, _) in out.as_set().unwrap().iter_counted() {
        println!("  {v}");
    }

    Ok(())
}
