//! An interactive EXCESS shell over an in-memory database.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Meta-commands:
//!   .help             this text
//!   .objects          list named top-level objects with their schemas
//!   .plan <retrieve>  show the initial and optimized algebra plans
//!   .counters         work counters of the last query
//!   .load university  load the Figure 1 workload
//!   .dump             print the schema as EXTRA DDL
//!   .sweep            garbage-collect unreachable objects
//!   .quit             exit
//!
//! Anything else is executed as EXCESS (multi-statement input is fine;
//! statements may span lines — the shell submits on an empty line).

use excess::db::Database;
use std::io::{BufRead, Write};

fn main() {
    let mut db = Database::new();
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    println!("EXCESS shell — .help for commands, empty line to submit.");
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta(&mut db, trimmed) {
                break;
            }
            print_prompt(&buffer);
            continue;
        }
        if trimmed.is_empty() {
            if !buffer.trim().is_empty() {
                match db.execute(&buffer) {
                    Ok(v) => println!("{}", excess::db::format_result(&v)),
                    Err(e) => println!("error: {e}"),
                }
            }
            buffer.clear();
        } else {
            buffer.push_str(&line);
            buffer.push('\n');
        }
        print_prompt(&buffer);
    }
}

fn print_prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("excess> ");
    } else {
        print!("   ...> ");
    }
    let _ = std::io::stdout().flush();
}

/// Handle a meta-command; returns `false` to quit.
fn meta(db: &mut Database, cmd: &str) -> bool {
    let (head, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
    match head {
        ".quit" | ".exit" => return false,
        ".help" => println!(
            ".objects | .plan <retrieve> | .counters | .load university | .dump | .sweep | .quit"
        ),
        ".objects" => {
            let mut names: Vec<&str> = db.catalog().names().collect();
            names.sort_unstable();
            for n in names {
                if let Some(s) = db.catalog().schema(n) {
                    println!("  {n} : {s}");
                }
            }
        }
        ".counters" => println!("  {}", db.last_counters()),
        ".dump" => print!("{}", db.dump_schema()),
        ".sweep" => println!("collected {} unreachable objects", db.sweep()),
        ".load" if rest.trim() == "university" => {
            match excess::workload::generate(&excess::workload::UniversityParams::default()) {
                Ok(u) => {
                    *db = u.db;
                    println!("loaded the Figure 1 university database");
                }
                Err(e) => println!("error: {e}"),
            }
        }
        ".plan" => match db.plan_for(rest) {
            Ok(plan) => {
                println!("-- initial --\n{}", db.explain(&plan));
                let optimized = db.optimize_plan(&plan);
                if optimized != plan {
                    println!("-- optimized --\n{}", db.explain(&optimized));
                }
            }
            Err(e) => println!("error: {e}"),
        },
        other => println!("unknown command `{other}` — try .help"),
    }
    true
}
