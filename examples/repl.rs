//! An interactive EXCESS shell over an in-memory database.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Meta-commands are listed by `.help` (the text is generated from the
//! same [`COMMANDS`] table that dispatches them, so it cannot drift).
//! Anything else is executed as EXCESS (multi-statement input is fine;
//! statements may span lines — the shell submits on an empty line).

use excess::db::Database;
use std::io::{BufRead, Write};

/// One meta-command: its name, argument placeholder shown in `.help`, a
/// one-line description, and its handler.  Returning `false` quits.
struct MetaCommand {
    name: &'static str,
    args: &'static str,
    help: &'static str,
    run: fn(&mut Database, &str) -> bool,
}

/// The command table — `.help` output and dispatch both derive from it.
const COMMANDS: &[MetaCommand] = &[
    MetaCommand {
        name: ".help",
        args: "",
        help: "this text",
        run: cmd_help,
    },
    MetaCommand {
        name: ".objects",
        args: "",
        help: "list named top-level objects with their schemas",
        run: cmd_objects,
    },
    MetaCommand {
        name: ".plan",
        args: "<retrieve>",
        help: "show the initial and optimized algebra plans",
        run: cmd_plan,
    },
    MetaCommand {
        name: ".physical",
        args: "<retrieve>",
        help: "lower the optimized plan and show each kernel choice with estimated vs actual rows",
        run: cmd_physical,
    },
    MetaCommand {
        name: ".profile",
        args: "<retrieve>",
        help: "EXPLAIN ANALYZE: run the optimized plan with per-operator profiling",
        run: cmd_profile,
    },
    MetaCommand {
        name: ".trace",
        args: "<retrieve>",
        help: "show the optimizer's rewrite journal for the query",
        run: cmd_trace,
    },
    MetaCommand {
        name: ".verify",
        args: "<retrieve>",
        help: "statically verify the plan: all diagnostics (errors and lints) with node paths",
        run: cmd_verify,
    },
    MetaCommand {
        name: ".props",
        args: "<retrieve>",
        help: "derived plan properties per node: sort, cardinality bounds, keys, nullability",
        run: cmd_props,
    },
    MetaCommand {
        name: ".analyze",
        args: "",
        help: "recollect statistics from the stored data (ANALYZE)",
        run: cmd_analyze,
    },
    MetaCommand {
        name: ".stats",
        args: "[object]",
        help: "show optimizer statistics (rows, distinct, per-attribute NDVs)",
        run: cmd_stats,
    },
    MetaCommand {
        name: ".counters",
        args: "",
        help: "work counters of the last query",
        run: cmd_counters,
    },
    MetaCommand {
        name: ".metrics",
        args: "[json|reset]",
        help: "cumulative session metrics (queries, work, rules fired)",
        run: cmd_metrics,
    },
    MetaCommand {
        name: ".threads",
        args: "[N]",
        help: "set the worker count for parallel retrieves (1 = serial); no argument shows it",
        run: cmd_threads,
    },
    MetaCommand {
        name: ".telemetry",
        args: "[json|reset]",
        help: "session telemetry: counters, latency histograms (p50/p95/p99)",
        run: cmd_telemetry,
    },
    MetaCommand {
        name: ".slowlog",
        args: "[N_us|all|json]",
        help: "flight recorder: recent slow queries (set threshold with N_us)",
        run: cmd_slowlog,
    },
    MetaCommand {
        name: ".feedback",
        args: "[json]",
        help: "misestimation log: worst est-vs-actual cardinality errors",
        run: cmd_feedback,
    },
    MetaCommand {
        name: ".memo",
        args: "[greedy|memo]",
        help: "memo picture of the last optimization; or switch the search strategy",
        run: cmd_memo,
    },
    MetaCommand {
        name: ".reoptimize",
        args: "",
        help: "re-plan the last query from its observed cardinalities (feedback loop)",
        run: cmd_reoptimize,
    },
    MetaCommand {
        name: ".spans",
        args: "[on|off|json|chrome]",
        help: "query span traces: toggle, or export the last trace",
        run: cmd_spans,
    },
    MetaCommand {
        name: ".load",
        args: "university",
        help: "load the Figure 1 workload",
        run: cmd_load,
    },
    MetaCommand {
        name: ".dump",
        args: "",
        help: "print the schema as EXTRA DDL",
        run: cmd_dump,
    },
    MetaCommand {
        name: ".sweep",
        args: "",
        help: "garbage-collect unreachable objects",
        run: cmd_sweep,
    },
    MetaCommand {
        name: ".quit",
        args: "",
        help: "exit",
        run: cmd_quit,
    },
];

fn main() {
    let mut db = Database::new();
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    println!("EXCESS shell — .help for commands, empty line to submit.");
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta(&mut db, trimmed) {
                break;
            }
            print_prompt(&buffer);
            continue;
        }
        if trimmed.is_empty() {
            if !buffer.trim().is_empty() {
                match db.execute(&buffer) {
                    Ok(v) => println!("{}", excess::db::format_result(&v)),
                    Err(e) => println!("error: {e}"),
                }
            }
            buffer.clear();
        } else {
            buffer.push_str(&line);
            buffer.push('\n');
        }
        print_prompt(&buffer);
    }
}

fn print_prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("excess> ");
    } else {
        print!("   ...> ");
    }
    let _ = std::io::stdout().flush();
}

/// Dispatch a meta-command through the table; returns `false` to quit.
fn meta(db: &mut Database, cmd: &str) -> bool {
    let (head, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
    let head = if head == ".exit" { ".quit" } else { head };
    match COMMANDS.iter().find(|c| c.name == head) {
        Some(c) => (c.run)(db, rest.trim()),
        None => {
            println!("unknown command `{head}` — try .help");
            true
        }
    }
}

fn cmd_help(_db: &mut Database, _rest: &str) -> bool {
    let width = COMMANDS
        .iter()
        .map(|c| {
            c.name.len()
                + if c.args.is_empty() {
                    0
                } else {
                    c.args.len() + 1
                }
        })
        .max()
        .unwrap_or(0);
    for c in COMMANDS {
        let usage = if c.args.is_empty() {
            c.name.to_string()
        } else {
            format!("{} {}", c.name, c.args)
        };
        println!("  {usage:<width$}  {}", c.help);
    }
    true
}

fn cmd_objects(db: &mut Database, _rest: &str) -> bool {
    let mut names: Vec<&str> = db.catalog().names().collect();
    names.sort_unstable();
    for n in names {
        if let Some(s) = db.catalog().schema(n) {
            println!("  {n} : {s}");
        }
    }
    true
}

fn cmd_plan(db: &mut Database, rest: &str) -> bool {
    match db.plan_for(rest) {
        Ok(plan) => {
            println!("-- initial --\n{}", db.explain(&plan));
            let optimized = db.optimize_plan(&plan);
            if optimized != plan {
                println!("-- optimized --\n{}", db.explain(&optimized));
            }
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_physical(db: &mut Database, rest: &str) -> bool {
    match db.plan_for(rest) {
        Ok(plan) => {
            let plan = if db.optimize {
                db.optimize_plan_journaled(&plan).0
            } else {
                plan
            };
            let physical = db.lower_plan(&plan);
            print!("{}", physical.render());
            match db.run_plan_physical_profiled(&physical) {
                Ok((_, profile)) => {
                    for (path, choice) in &physical.choices {
                        let actual = profile
                            .node(path)
                            .map(|n| n.rows_out.to_string())
                            .unwrap_or_else(|| "—".to_string());
                        let est = choice
                            .est_rows
                            .map(|r| format!("{r:.0}"))
                            .unwrap_or_else(|| "?".to_string());
                        println!(
                            "  {} {}: est rows={est} actual rows={actual}",
                            excess::algebra::path_string(path),
                            choice.op
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_profile(db: &mut Database, rest: &str) -> bool {
    match db.plan_for(rest) {
        Ok(plan) => {
            let plan = if db.optimize {
                db.optimize_plan_journaled(&plan).0
            } else {
                plan
            };
            match db.explain_analyze(&plan) {
                Ok(text) => print!("{text}"),
                Err(e) => println!("error: {e}"),
            }
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_trace(db: &mut Database, rest: &str) -> bool {
    match db.plan_for(rest) {
        Ok(plan) => {
            let (_, journal) = db.optimize_plan_journaled(&plan);
            if journal.steps.is_empty() {
                println!("no rewrites fired (cost {:.0})", journal.initial_cost);
            } else {
                for s in &journal.steps {
                    println!(
                        "  {} @ {:?}: cost {:.0} → {:.0}",
                        s.rule, s.path, s.cost_before, s.cost_after
                    );
                }
                println!(
                    "  {} plans enumerated (budget {}), cost {:.0} → {:.0}",
                    journal.plans_enumerated,
                    journal.max_plans,
                    journal.initial_cost,
                    journal.final_cost
                );
            }
            for r in &journal.refused {
                println!("  refused {} @ {:?}: {}", r.rule, r.path, r.reason);
            }
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_verify(db: &mut Database, rest: &str) -> bool {
    match db.plan_for(rest) {
        Ok(plan) => {
            let report = db.verify_plan(&plan);
            if report.diagnostics.is_empty() {
                println!("clean: no diagnostics");
            } else {
                for d in &report.diagnostics {
                    println!("  {d}");
                }
                println!(
                    "  {} error(s), {} lint(s)",
                    report.error_count(),
                    report.lint_count()
                );
            }
            if let Some(schema) = &report.schema {
                println!("  output schema: {schema}");
            }
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_props(db: &mut Database, rest: &str) -> bool {
    match db.plan_for(rest) {
        Ok(plan) => {
            let analysis = db.analyze_plan_props(&plan);
            print!("{}", analysis.render());
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_analyze(db: &mut Database, _rest: &str) -> bool {
    let n = db.analyze().objects.len();
    println!("statistics collected for {n} object(s) — see .stats");
    true
}

fn cmd_stats(db: &mut Database, rest: &str) -> bool {
    let stats = db.statistics();
    let mut names: Vec<&String> = stats.objects.keys().collect();
    names.sort_unstable();
    if !rest.is_empty() {
        names.retain(|n| n.as_str() == rest);
        if names.is_empty() {
            println!("no statistics for `{rest}` — run .analyze after loading data");
            return true;
        }
    } else if names.is_empty() {
        println!("no statistics collected yet — run .analyze");
        return true;
    }
    for n in names {
        let o = stats.object(n);
        println!(
            "  {n}: rows={:.0} distinct={:.0} (dup ×{:.1}) avg_nested={:.1}",
            o.rows,
            o.distinct,
            o.rows / o.distinct.max(1.0),
            o.avg_nested
        );
        for (attr, ndv) in &o.attr_ndv {
            println!("    ndv({attr}) = {ndv:.0}");
        }
    }
    true
}

fn cmd_counters(db: &mut Database, _rest: &str) -> bool {
    println!("  {}", db.last_counters());
    true
}

fn cmd_metrics(db: &mut Database, rest: &str) -> bool {
    match rest {
        "json" => println!("{}", excess::db::metrics_json(db.metrics())),
        "reset" => {
            db.reset_metrics();
            println!("session metrics reset");
        }
        _ => print!("{}", db.metrics()),
    }
    true
}

fn cmd_threads(db: &mut Database, rest: &str) -> bool {
    if rest.is_empty() {
        let cfg = db.exec_config();
        if cfg.is_parallel() {
            println!(
                "  {} workers, {} partitions per operator",
                cfg.workers, cfg.partitions
            );
            if let Some(report) = db.last_exec_report() {
                print!("{}", excess::db::render_parallel_execution(report));
            }
        } else {
            println!(
                "  serial execution (set with .threads N or ${})",
                excess::db::THREADS_ENV
            );
        }
        return true;
    }
    match rest.parse::<usize>() {
        Ok(n) if n >= 1 => {
            db.set_threads(n);
            if n == 1 {
                println!("serial execution");
            } else {
                println!("retrieves now run on {n} workers");
            }
        }
        _ => println!("usage: .threads [N]  (N >= 1)"),
    }
    true
}

fn cmd_telemetry(db: &mut Database, rest: &str) -> bool {
    match rest {
        "json" => println!("{}", db.telemetry().snapshot_json()),
        "reset" => {
            let t = db.telemetry_mut();
            t.registry.reset();
            t.feedback.reset();
            println!("telemetry reset");
        }
        _ => {
            let t = db.telemetry();
            for (name, v) in t.registry.counters() {
                println!("  {name}: {v}");
            }
            for (name, h) in t.registry.histograms() {
                println!(
                    "  {name}: n={} mean={:.0} p50={} p95={} p99={} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max().unwrap_or(0)
                );
            }
            if t.registry.counters().next().is_none() && t.registry.histograms().next().is_none() {
                println!("  (no queries recorded yet)");
            }
        }
    }
    true
}

fn cmd_slowlog(db: &mut Database, rest: &str) -> bool {
    if rest == "json" {
        println!("{}", db.telemetry().recorder.to_json());
        return true;
    }
    if let Ok(us) = rest.parse::<u64>() {
        db.telemetry_mut().recorder.set_slow_threshold_us(us);
        println!("slow-query threshold set to {us} µs");
        return true;
    }
    let recorder = &db.telemetry().recorder;
    let records: Vec<_> = if rest == "all" {
        recorder.records().collect()
    } else {
        recorder.slow().collect()
    };
    if records.is_empty() {
        println!(
            "  no {}queries recorded (threshold {} µs; .slowlog all shows everything)",
            if rest == "all" { "" } else { "slow " },
            recorder.slow_threshold_us()
        );
    }
    for r in records {
        let phases: Vec<String> = r
            .phase_us
            .iter()
            .map(|(name, us)| format!("{name}={us}µs"))
            .collect();
        println!(
            "  [{}] {}µs rows={} {}  {}",
            r.engine,
            r.total_us(),
            r.rows,
            phases.join(" "),
            r.query.replace('\n', " ")
        );
    }
    true
}

fn cmd_feedback(db: &mut Database, rest: &str) -> bool {
    if rest == "json" {
        println!("{}", db.telemetry().feedback.to_json());
        return true;
    }
    let log = &db.telemetry().feedback;
    if log.is_empty() {
        println!("  no observations yet (run explain analyze or enable .spans)");
        return true;
    }
    println!("  worst cardinality misestimations (q-error = max(est/act, act/est)):");
    for e in log.worst(10) {
        println!(
            "  q={:.1}  {} {}  est {:.0} vs actual {:.0}  ({} obs, plan {:016x})",
            e.max_q_error,
            e.path,
            e.op,
            e.mean_est(),
            e.mean_actual(),
            e.observations,
            e.plan_hash
        );
    }
    true
}

fn cmd_memo(db: &mut Database, rest: &str) -> bool {
    match rest {
        "greedy" => {
            db.set_optimizer_mode(excess::db::OptimizerMode::Greedy);
            println!("plan search: legacy greedy pass");
        }
        "memo" => {
            db.set_optimizer_mode(excess::db::OptimizerMode::Memo);
            println!("plan search: memoized group search");
        }
        "" => match db.last_memo() {
            Some(snapshot) => print!("{}", snapshot.render()),
            None => println!(
                "no memoized optimization yet (mode: {:?} — run a query, or .memo memo)",
                db.optimizer_mode()
            ),
        },
        _ => println!("usage: .memo [greedy|memo]"),
    }
    true
}

fn cmd_reoptimize(db: &mut Database, _rest: &str) -> bool {
    match db.reoptimize_last() {
        Some(report) => print!("{}", report.render()),
        None => println!(
            "nothing to re-optimize: run a query under .spans on (or .profile it) \
             so the feedback log has observations for its plan"
        ),
    }
    true
}

fn cmd_spans(db: &mut Database, rest: &str) -> bool {
    match rest {
        "on" => {
            db.enable_query_spans(true);
            println!("query spans on — queries now run profiled");
        }
        "off" => {
            db.enable_query_spans(false);
            println!("query spans off");
        }
        "json" => match db.last_query_trace() {
            Some(t) => println!("{}", t.to_json()),
            None => println!("no trace yet (.spans on, then run a query)"),
        },
        "chrome" => match db.last_query_trace() {
            Some(t) => println!("{}", t.to_chrome_trace()),
            None => println!("no trace yet (.spans on, then run a query)"),
        },
        _ => match db.last_query_trace() {
            Some(t) => {
                println!("  last trace: {} spans, engine {}", t.len(), t.engine);
                print_span(&t.root, 1);
            }
            None => println!("usage: .spans on|off|json|chrome"),
        },
    }
    true
}

fn print_span(s: &excess::db::Span, depth: usize) {
    println!("{}{} ({} µs)", "  ".repeat(depth), s.name, s.dur_us);
    for c in &s.children {
        print_span(c, depth + 1);
    }
}

fn cmd_load(db: &mut Database, rest: &str) -> bool {
    if rest != "university" {
        println!("usage: .load university");
        return true;
    }
    match excess::workload::generate(&excess::workload::UniversityParams::default()) {
        Ok(u) => {
            let exec = db.exec_config();
            *db = u.db;
            db.set_exec_config(exec);
            println!("loaded the Figure 1 university database");
        }
        Err(e) => println!("error: {e}"),
    }
    true
}

fn cmd_dump(db: &mut Database, _rest: &str) -> bool {
    print!("{}", db.dump_schema());
    true
}

fn cmd_sweep(db: &mut Database, _rest: &str) -> bool {
    println!("collected {} unreachable objects", db.sweep());
    true
}

fn cmd_quit(_db: &mut Database, _rest: &str) -> bool {
    false
}
