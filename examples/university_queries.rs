//! Every query from the paper, over the Figure 1 university database:
//! Section 2.2's two examples, Figure 3, Figure 4, and Section 5's two
//! optimization examples — with initial plan, optimized plan, and result.
//!
//! ```sh
//! cargo run --release --example university_queries
//! ```

use excess::db::Database;
use excess::workload::{generate, queries, UniversityParams};

fn show(db: &mut Database, title: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {title}");
    println!("{}", src.trim());
    // Multi-statement inputs (range decls + retrieve) run through execute;
    // for the plan display use the final retrieve.
    let stmts = excess::lang::parse_program(src)?;
    for s in &stmts[..stmts.len() - 1] {
        db.run_stmt(s)?;
    }
    let excess::lang::ast::Stmt::Retrieve(r) = &stmts[stmts.len() - 1] else {
        return Err("expected a retrieve".into());
    };
    let (plan, _) = db.translate(r)?;
    println!("\n  initial plan:\n    {plan}");
    // Trace the greedy pass on the desugared form so fusion rules can fire.
    let opt = excess::optimizer::Optimizer::standard();
    let ctx = excess::optimizer::RuleCtx {
        registry: db.registry(),
        schemas: db.catalog(),
    };
    let (_, trace) = opt.optimize_greedy_traced(&plan.desugar(), &ctx, db.statistics());
    for step in &trace {
        println!(
            "  rule fired: {} (est. cost {:.0} → {:.0})",
            step.rule, step.cost_before, step.cost_after
        );
    }
    let optimized = db.optimize_plan(&plan);
    if optimized != plan {
        println!("  optimized plan:\n    {optimized}");
    } else {
        println!("  (optimizer kept the initial plan)");
    }
    let out = db.run_plan(&optimized)?;
    let rendered = out.to_string();
    let clipped = if rendered.len() > 300 {
        format!("{}… <clipped, {} chars>", &rendered[..300], rendered.len())
    } else {
        rendered
    };
    println!("  counters: {}", db.last_counters());
    println!("  result:   {clipped}\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // floors = 5 so Example 2's `floor = 5` predicate matches.
    let p = UniversityParams {
        floors: 5,
        ..Default::default()
    };
    let mut db = generate(&p)?.db;

    show(
        &mut db,
        "Section 2.2 — kids of 2nd-floor employees",
        queries::SECTION2_KIDS,
    )?;
    show(
        &mut db,
        "Section 2.2 — correlated min-age aggregate",
        queries::SECTION2_MIN_AGE,
    )?;
    show(&mut db, "Figure 3 — TopTen[5]", queries::FIGURE3)?;
    show(&mut db, "Figure 4 — functional join", queries::FIGURE4)?;
    show(&mut db, "Example 1 (Figures 6–8)", queries::EXAMPLE1)?;
    show(&mut db, "Example 2 (Figures 9–11)", queries::EXAMPLE2)?;

    // And the other direction of the equipollence theorem: take Figure 4's
    // algebra tree back to EXCESS source.
    let plan = db.plan_for(queries::FIGURE4)?;
    println!("== Equipollence, direction ii — Figure 4's plan decompiled");
    println!("{}", excess::lang::decompile(&plan, db.registry())?);

    Ok(())
}
